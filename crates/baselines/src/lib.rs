//! # baselines — every comparator discipline the SFQ paper discusses
//!
//! - [`Wfq`]: Weighted Fair Queuing / PGPS with an exact GPS fluid
//!   simulation for `v(t)` (Eqs. 1–3),
//! - [`Fqs`]: Fair Queuing based on Start-time (GPS tags, start-tag
//!   order),
//! - [`Scfq`]: Self-Clocked Fair Queuing,
//! - [`VirtualClock`]: Zhang's Virtual Clock (unfair real-time
//!   baseline; also the GSQ inside Fair Airport),
//! - [`Drr`]: Deficit Round Robin,
//! - [`DelayEdd`]: Delay Earliest-Due-Date (Eq. 66 / Theorem 7),
//! - [`Fifo`]: the null discipline.
//!
//! All implement `sfq_core::Scheduler`, so the servers, network
//! simulator, benches, and analysis treat them interchangeably with SFQ.

#![warn(missing_docs)]
// Non-test code must stay panic-free on fallible paths: route failures
// through `sfq_core::SchedError` instead (see docs/robustness.md). Unit
// tests may unwrap freely — the cfg_attr drops the lint under
// `cfg(test)`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod drr;
mod edd;
mod fifo;
mod gps;
mod scfq;
mod vc;
mod wfq;

pub use drr::{drr_quantum, Drr};
pub use edd::DelayEdd;
pub use fifo::Fifo;
pub use gps::GpsClock;
pub use scfq::Scfq;
pub use vc::VirtualClock;
pub use wfq::{Fqs, Wfq};
