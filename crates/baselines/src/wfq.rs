//! Weighted Fair Queuing (WFQ / PGPS) and Fair Queuing based on
//! Start-time (FQS).
//!
//! Both stamp packets with the GPS-derived tags of Eqs. 1–2, using the
//! exact fluid simulation in [`crate::GpsClock`] for `v(t)` (Eq. 3).
//! WFQ serves in increasing *finish*-tag order; FQS (Greenberg &
//! Madras) serves in increasing *start*-tag order. Both assume a fixed
//! server capacity `C` when computing `v(t)` — the assumption Example 2
//! of the paper exploits to show WFQ's unfairness on variable-rate
//! servers.

use crate::gps::GpsClock;
use sfq_core::obs::{FlowChange, NoopObserver, SchedEvent, SchedObserver};
use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, Ratio, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Which GPS tag orders service.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Order {
    /// Increasing finish tags: WFQ.
    Finish,
    /// Increasing start tags: FQS.
    Start,
}

#[derive(Debug)]
struct GpsScheduler<O: SchedObserver> {
    gps: GpsClock,
    order: Order,
    name: &'static str,
    last_finish: HashMap<FlowId, Ratio>,
    weights: HashMap<FlowId, Rate>,
    backlog: HashMap<FlowId, usize>,
    heap: BinaryHeap<Reverse<(Ratio, u64, HeapPacket)>>,
    tags: HashMap<u64, (Ratio, Ratio)>,
    queued: usize,
    obs: O,
}

/// Wrapper so the heap tuple is fully ordered without requiring Ord on
/// `Packet` fields beyond the uid already present in the key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct HeapPacket(Packet);

impl PartialOrd for HeapPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.uid.cmp(&other.0.uid)
    }
}

impl<O: SchedObserver> GpsScheduler<O> {
    fn new(capacity: Rate, order: Order, name: &'static str, obs: O) -> Self {
        GpsScheduler {
            gps: GpsClock::new(capacity),
            order,
            name,
            last_finish: HashMap::new(),
            weights: HashMap::new(),
            backlog: HashMap::new(),
            heap: BinaryHeap::new(),
            tags: HashMap::new(),
            queued: 0,
            obs,
        }
    }

    fn tags_of(&self, uid: u64) -> Option<(Ratio, Ratio)> {
        self.tags.get(&uid).copied()
    }
}

impl<O: SchedObserver> Scheduler for GpsScheduler<O> {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        self.gps.add_flow(flow, weight);
        self.weights.insert(flow, weight);
        self.last_finish.entry(flow).or_insert(Ratio::ZERO);
        self.backlog.entry(flow).or_insert(0);
        self.obs.on_flow_change(flow, &FlowChange::Added { weight });
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        let weight = *self
            .weights
            .get(&pkt.flow)
            .unwrap_or_else(|| panic!("{}: unregistered flow {}", self.name, pkt.flow));
        let lf = self.last_finish[&pkt.flow];
        let span = weight.tag_span(pkt.len);
        let (start, finish) = self.gps.on_arrival(now, pkt.flow, span, lf);
        self.last_finish.insert(pkt.flow, finish);
        if let Some(n) = self.backlog.get_mut(&pkt.flow) {
            *n += 1;
        }
        let key = match self.order {
            Order::Finish => finish,
            Order::Start => start,
        };
        self.tags.insert(pkt.uid, (start, finish));
        self.heap.push(Reverse((key, pkt.uid, HeapPacket(pkt))));
        self.queued += 1;
        // v here is the GPS fluid clock, already advanced to `now` by
        // on_arrival.
        self.obs.on_enqueue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: start,
            finish_tag: finish,
            v: self.gps.peek_v(),
        });
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let Reverse((_key, uid, HeapPacket(pkt))) = self.heap.pop()?;
        self.queued -= 1;
        // Every queued uid was tagged at enqueue; the zero fallback
        // only shows to observers if that invariant is ever broken.
        let (start, finish) = self.tags.remove(&uid).unwrap_or((Ratio::ZERO, Ratio::ZERO));
        if let Some(n) = self.backlog.get_mut(&pkt.flow) {
            *n -= 1;
        }
        self.obs.on_dequeue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid,
            len: pkt.len,
            start_tag: start,
            finish_tag: finish,
            v: self.gps.peek_v(),
        });
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.backlog.get(&flow).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Weighted Fair Queuing (PGPS): GPS tags, served by finish tag.
///
/// Generic over an observer (see [`sfq_core::obs`]); events report the
/// GPS start/finish tags and the fluid clock `v(t)`.
#[derive(Debug)]
pub struct Wfq<O: SchedObserver = NoopObserver>(GpsScheduler<O>);

impl Wfq {
    /// WFQ emulating a fluid server of capacity `assumed_capacity`.
    pub fn new(assumed_capacity: Rate) -> Self {
        Self::with_observer(assumed_capacity, NoopObserver)
    }
}

impl<O: SchedObserver> Wfq<O> {
    /// WFQ emulating a fluid server of capacity `assumed_capacity`,
    /// reporting events to `obs`.
    pub fn with_observer(assumed_capacity: Rate, obs: O) -> Self {
        Wfq(GpsScheduler::new(
            assumed_capacity,
            Order::Finish,
            "WFQ",
            obs,
        ))
    }

    /// GPS start/finish tags of a queued packet (tests/telemetry).
    pub fn tags_of(&self, uid: u64) -> Option<(Ratio, Ratio)> {
        self.0.tags_of(uid)
    }

    /// Current GPS virtual time (advanced lazily; for tests).
    pub fn gps_v(&self) -> Ratio {
        self.0.gps.peek_v()
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.0.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.0.obs
    }

    /// Consume the scheduler, returning the observer.
    pub fn into_observer(self) -> O {
        self.0.obs
    }
}

/// Fair Queuing based on Start-time: GPS tags, served by start tag.
///
/// Generic over an observer (see [`sfq_core::obs`]); events report the
/// GPS start/finish tags and the fluid clock `v(t)`.
#[derive(Debug)]
pub struct Fqs<O: SchedObserver = NoopObserver>(GpsScheduler<O>);

impl Fqs {
    /// FQS emulating a fluid server of capacity `assumed_capacity`.
    pub fn new(assumed_capacity: Rate) -> Self {
        Self::with_observer(assumed_capacity, NoopObserver)
    }
}

impl<O: SchedObserver> Fqs<O> {
    /// FQS emulating a fluid server of capacity `assumed_capacity`,
    /// reporting events to `obs`.
    pub fn with_observer(assumed_capacity: Rate, obs: O) -> Self {
        Fqs(GpsScheduler::new(
            assumed_capacity,
            Order::Start,
            "FQS",
            obs,
        ))
    }

    /// GPS start/finish tags of a queued packet (tests/telemetry).
    pub fn tags_of(&self, uid: u64) -> Option<(Ratio, Ratio)> {
        self.0.tags_of(uid)
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.0.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.0.obs
    }

    /// Consume the scheduler, returning the observer.
    pub fn into_observer(self) -> O {
        self.0.obs
    }
}

macro_rules! delegate_scheduler {
    ($ty:ident) => {
        impl<O: SchedObserver> Scheduler for $ty<O> {
            fn add_flow(&mut self, flow: FlowId, weight: Rate) {
                self.0.add_flow(flow, weight)
            }
            fn enqueue(&mut self, now: SimTime, pkt: Packet) {
                self.0.enqueue(now, pkt)
            }
            fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
                self.0.dequeue(now)
            }
            fn on_departure(&mut self, now: SimTime) {
                self.0.on_departure(now)
            }
            fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn backlog(&self, flow: FlowId) -> usize {
                self.0.backlog(flow)
            }
            fn name(&self) -> &'static str {
                self.0.name()
            }
        }
    };
}

delegate_scheduler!(Wfq);
delegate_scheduler!(Fqs);

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    /// Example 1 of the paper: flows f and m with l^max/r equal; f sends
    /// 2 full-size packets, m sends one full-size and two half-size; a
    /// valid WFQ order is f1, m1, m2, m3, f2.
    #[test]
    fn example1_wfq_order() {
        let t0 = SimTime::ZERO;
        // Full-size packets are 250 bytes (span 2), halves 125 (span 1).
        let mut w = Wfq::new(Rate::bps(2_000));
        w.add_flow(FlowId(1), Rate::bps(1_000));
        w.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let f1 = pf.make(FlowId(1), Bytes::new(250), t0);
        let f2 = pf.make(FlowId(1), Bytes::new(250), t0);
        let m1 = pf.make(FlowId(2), Bytes::new(250), t0);
        let m2 = pf.make(FlowId(2), Bytes::new(125), t0);
        let m3 = pf.make(FlowId(2), Bytes::new(125), t0);
        for p in [f1, f2, m1, m2, m3] {
            w.enqueue(t0, p);
        }
        // Finish tags: F(f1)=2, F(f2)=4, F(m1)=2, F(m2)=3, F(m3)=4.
        assert_eq!(w.tags_of(f1.uid).unwrap().1, Ratio::from_int(2));
        assert_eq!(w.tags_of(f2.uid).unwrap().1, Ratio::from_int(4));
        assert_eq!(w.tags_of(m1.uid).unwrap().1, Ratio::from_int(2));
        assert_eq!(w.tags_of(m2.uid).unwrap().1, Ratio::from_int(3));
        assert_eq!(w.tags_of(m3.uid).unwrap().1, Ratio::from_int(4));
        let order: Vec<u64> = std::iter::from_fn(|| w.dequeue(t0).map(|p| p.uid)).collect();
        // Ties broken by uid: f1 before m1 (uid), f2 before m3? f2.uid=1 <
        // m3.uid=4, so order is f1, m1, m2, f2, m3 — uid tie-break picks
        // f2 at tag 4. Example 1 allows any tie-break; the unfairness
        // interval [start(m1), finish(m3)] still contains no f service
        // in the paper's chosen order. Here we just verify tag ordering.
        assert_eq!(order[0], f1.uid);
        assert_eq!(order[1], m1.uid);
        assert_eq!(order[2], m2.uid);
        assert!(order[3] == f2.uid || order[3] == m3.uid);
    }

    #[test]
    fn fqs_serves_by_start_tag() {
        let mut q = Fqs::new(Rate::bps(2_000));
        q.add_flow(FlowId(1), Rate::bps(1_000));
        q.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0); // S=0,F=1
        let b = pf.make(FlowId(1), Bytes::new(125), t0); // S=1,F=2
        let c = pf.make(FlowId(2), Bytes::new(125), t0); // S=0,F=1
        q.enqueue(t0, a);
        q.enqueue(t0, b);
        q.enqueue(t0, c);
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(t0).map(|p| p.uid)).collect();
        assert_eq!(order, vec![a.uid, c.uid, b.uid]);
    }

    #[test]
    fn wfq_backlog_and_len() {
        let mut w = Wfq::new(Rate::mbps(1));
        w.add_flow(FlowId(1), Rate::kbps(500));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        w.enqueue(t0, pf.make(FlowId(1), Bytes::new(100), t0));
        assert_eq!(w.len(), 1);
        assert_eq!(w.backlog(FlowId(1)), 1);
        assert!(!w.is_empty());
        let _ = w.dequeue(t0);
        assert!(w.is_empty());
        assert!(w.dequeue(t0).is_none());
    }

    /// Example 2: WFQ computes v(t) against its assumed capacity, so a
    /// flow arriving after a slow real-server interval gets a huge
    /// finish tag and is starved — the schedule itself shows the bias.
    #[test]
    fn example2_late_flow_gets_large_tags() {
        // Assumed capacity C = 10 unit packets/s (packets of 125 bytes
        // at 10_000 bps); weights 1 pkt/s = 1_000 bps.
        let c = 10i128;
        let mut w = Wfq::new(Rate::bps(10_000));
        w.add_flow(FlowId(1), Rate::bps(1_000));
        w.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        // Flow 1 sends C+1 packets at t=0: F(p^j) = j.
        let mut pkts = Vec::new();
        for _ in 0..=c {
            let p = pf.make(FlowId(1), Bytes::new(125), t0);
            w.enqueue(t0, p);
            pkts.push(p);
        }
        assert_eq!(w.tags_of(pkts[0].uid).unwrap().1, Ratio::ONE);
        // Real server was slow: only 1 packet served in [0,1). At t=1 the
        // GPS clock nevertheless advanced at slope C/1 = 10: v(1) = C.
        let t1 = SimTime::from_secs(1);
        let m1 = pf.make(FlowId(2), Bytes::new(125), t1);
        w.enqueue(t1, m1);
        // F(m1) = v(1) + 1 = C + 1, behind all of flow 1's backlog.
        assert_eq!(w.tags_of(m1.uid).unwrap().1, Ratio::from_int(c + 1));
    }
}
