//! Delay Earliest-Due-Date (Delay EDD), as defined in Section 3 of the
//! paper (Eq. 66) and analyzed over Fluctuation Constrained servers in
//! Theorem 7.
//!
//! On arrival, packet `p_f^j` is assigned the deadline
//! `D(p_f^j) = EAT(p_f^j, r_f) + d_f`, where `EAT` is the expected
//! arrival time recurrence of Eq. 37 and `d_f` the flow's deadline
//! offset; packets are served earliest-deadline-first. Delay EDD
//! *separates* delay from throughput allocation (a flow may get a small
//! `d_f` with a small `r_f`), which flat SFQ cannot do — the paper uses
//! Delay EDD inside a hierarchical SFQ class to add that capability.
//!
//! The schedulability condition (Eq. 67) lives in the `analysis` crate.

use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug)]
struct FlowState {
    rate: Rate,
    deadline_offset: SimDuration,
    /// `EAT(p_f^{j-1}) + l^{j-1}/r` (Eq. 37's recurrence floor); the
    /// paper's `EAT(p^0) = -inf` is realized by starting at zero.
    eat_floor: SimTime,
    backlog: usize,
}

/// The Delay EDD scheduler.
#[derive(Debug)]
pub struct DelayEdd {
    flows: HashMap<FlowId, FlowState>,
    heap: BinaryHeap<Reverse<(SimTime, u64, HeapPacket)>>,
    deadlines: HashMap<u64, SimTime>,
    queued: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct HeapPacket(Packet);

impl PartialOrd for HeapPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.uid.cmp(&other.0.uid)
    }
}

impl DelayEdd {
    /// New Delay EDD scheduler.
    pub fn new() -> Self {
        DelayEdd {
            flows: HashMap::new(),
            heap: BinaryHeap::new(),
            deadlines: HashMap::new(),
            queued: 0,
        }
    }

    /// Register a flow with rate `r_f` and deadline offset `d_f`.
    pub fn add_flow_with_deadline(&mut self, flow: FlowId, rate: Rate, d: SimDuration) {
        assert!(rate.as_bps() > 0, "EDD: flow rate must be positive");
        self.flows
            .entry(flow)
            .and_modify(|f| {
                f.rate = rate;
                f.deadline_offset = d;
            })
            .or_insert(FlowState {
                rate,
                deadline_offset: d,
                eat_floor: SimTime::ZERO,
                backlog: 0,
            });
    }

    /// Deadline assigned to a queued packet (tests/telemetry).
    pub fn deadline_of(&self, uid: u64) -> Option<SimTime> {
        self.deadlines.get(&uid).copied()
    }
}

impl Default for DelayEdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DelayEdd {
    /// Trait-level registration uses the flow's own packet service time
    /// at its rate as a conservative default deadline offset of zero —
    /// prefer [`DelayEdd::add_flow_with_deadline`].
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        self.add_flow_with_deadline(flow, weight, SimDuration::ZERO);
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        let fs = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("EDD: unregistered flow {}", pkt.flow));
        // Eq. 37: EAT = max(A, EAT_prev + l_prev/r).
        let eat = now.max(fs.eat_floor);
        fs.eat_floor = eat + fs.rate.tx_time(pkt.len);
        fs.backlog += 1;
        let deadline = eat + fs.deadline_offset;
        self.deadlines.insert(pkt.uid, deadline);
        self.heap
            .push(Reverse((deadline, pkt.uid, HeapPacket(pkt))));
        self.queued += 1;
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let Reverse((_d, uid, HeapPacket(pkt))) = self.heap.pop()?;
        self.queued -= 1;
        self.deadlines.remove(&uid);
        if let Some(fs) = self.flows.get_mut(&pkt.flow) {
            fs.backlog -= 1;
        }
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.backlog)
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        match self.flows.get(&flow) {
            Some(fs) if fs.backlog == 0 => {
                self.flows.remove(&flow);
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> &'static str {
        "DelayEDD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn deadline_is_eat_plus_offset() {
        let mut e = DelayEdd::new();
        e.add_flow_with_deadline(FlowId(1), Rate::bps(1_000), SimDuration::from_millis(50));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0); // EAT=0
        let b = pf.make(FlowId(1), Bytes::new(125), t0); // EAT=1s
        e.enqueue(t0, a);
        e.enqueue(t0, b);
        assert_eq!(e.deadline_of(a.uid), Some(SimTime::from_millis(50)));
        assert_eq!(e.deadline_of(b.uid), Some(SimTime::from_millis(1_050)));
    }

    #[test]
    fn small_deadline_flow_preempts_large() {
        let mut e = DelayEdd::new();
        e.add_flow_with_deadline(FlowId(1), Rate::bps(1_000), SimDuration::from_secs(10));
        e.add_flow_with_deadline(FlowId(2), Rate::bps(1_000), SimDuration::from_millis(1));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let slow = pf.make(FlowId(1), Bytes::new(125), t0);
        e.enqueue(t0, slow);
        let urgent = pf.make(FlowId(2), Bytes::new(125), t0);
        e.enqueue(t0, urgent);
        assert_eq!(e.dequeue(t0).unwrap().uid, urgent.uid);
    }

    #[test]
    fn eat_floor_respects_reserved_rate_not_arrival_burst() {
        let mut e = DelayEdd::new();
        e.add_flow_with_deadline(FlowId(1), Rate::bps(1_000), SimDuration::ZERO);
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        // Burst of 3: EATs are 0, 1, 2 s even though all arrive at 0.
        let mut eats = Vec::new();
        for _ in 0..3 {
            let p = pf.make(FlowId(1), Bytes::new(125), t0);
            e.enqueue(t0, p);
            eats.push(e.deadline_of(p.uid).unwrap());
        }
        assert_eq!(
            eats,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(2)]
        );
    }

    #[test]
    fn counts() {
        let mut e = DelayEdd::new();
        e.add_flow(FlowId(1), Rate::bps(8));
        assert!(e.dequeue(SimTime::ZERO).is_none());
        let mut pf = PacketFactory::new();
        e.enqueue(
            SimTime::ZERO,
            pf.make(FlowId(1), Bytes::new(1), SimTime::ZERO),
        );
        assert_eq!((e.len(), e.backlog(FlowId(1))), (1, 1));
        let _ = e.dequeue(SimTime::ZERO);
        assert!(e.is_empty());
    }
}
