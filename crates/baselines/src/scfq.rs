//! Self-Clocked Fair Queuing (Golestani '94; analyzed in [8] of the
//! paper).
//!
//! SCFQ approximates the GPS virtual time with the *finish* tag of the
//! packet currently in service, making `v(t)` O(1) to compute. Packets
//! are tagged with Eqs. 4–5 (same recurrence as SFQ) but served in
//! increasing **finish**-tag order. Its fairness measure equals SFQ's
//! (`l_f^max/r_f + l_m^max/r_m`), but its maximum delay exceeds SFQ's by
//! `l_f^j/r_f^j − l_f^j/C` (Eqs. 56–57) — the gap the paper quantifies
//! as 24.4 ms for a 64 Kb/s flow with 200-byte packets on a 100 Mb/s
//! link.

use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, Ratio, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A packet in its flow's FIFO with the tags assigned at arrival.
#[derive(Clone, Copy, Debug)]
struct QueuedPkt {
    pkt: Packet,
    start: Ratio,
    finish: Ratio,
}

#[derive(Debug)]
struct FlowState {
    weight: Rate,
    last_finish: Ratio,
    /// Backlogged packets in arrival order. Finish tags are strictly
    /// increasing within a flow, so the FIFO head always carries the
    /// flow's minimum tag and the scheduling heap only needs heads.
    queue: VecDeque<QueuedPkt>,
}

/// The Self-Clocked Fair Queuing scheduler.
///
/// Packets live in per-flow FIFOs; the heap holds `(finish, uid, flow)`
/// for each backlogged flow's head only (same head-of-flow structure as
/// [`sfq_core::Sfq`]), so heap cost scales with backlogged flows, not
/// queued packets.
#[derive(Debug)]
pub struct Scfq {
    flows: HashMap<FlowId, FlowState>,
    heap: BinaryHeap<Reverse<(Ratio, u64, FlowId)>>,
    /// v(t): finish tag of the packet in service (kept after service so
    /// arrivals between departures see the last served packet's tag).
    v: Ratio,
    queued: usize,
}

impl Scfq {
    /// New SCFQ scheduler.
    pub fn new() -> Self {
        Scfq {
            flows: HashMap::new(),
            heap: BinaryHeap::new(),
            v: Ratio::ZERO,
            queued: 0,
        }
    }

    /// Current virtual time (finish tag of packet in service).
    pub fn virtual_time(&self) -> Ratio {
        self.v
    }

    /// Tags of a queued packet. Diagnostic accessor (tests/telemetry):
    /// scans the per-flow FIFOs rather than taxing the hot path with a
    /// uid index.
    pub fn tags_of(&self, uid: u64) -> Option<(Ratio, Ratio)> {
        self.flows
            .values()
            .flat_map(|f| f.queue.iter())
            .find(|qp| qp.pkt.uid == uid)
            .map(|qp| (qp.start, qp.finish))
    }

    /// Entries in the head-of-flow heap (diagnostic: ≤ backlogged flows
    /// plus any stale entries awaiting lazy reclamation).
    pub fn head_heap_len(&self) -> usize {
        self.heap.len()
    }
}

impl Default for Scfq {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Scfq {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        assert!(weight.as_bps() > 0, "SCFQ: flow weight must be positive");
        self.flows
            .entry(flow)
            .and_modify(|f| f.weight = weight)
            .or_insert(FlowState {
                weight,
                last_finish: Ratio::ZERO,
                queue: VecDeque::new(),
            });
    }

    fn enqueue(&mut self, _now: SimTime, pkt: Packet) {
        // Snapped at the read point to bound tag-denominator growth
        // (no-op below denominators of 1e12; see Ratio::snap_pico).
        let v = self.v.snap_pico();
        let fs = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("SCFQ: unregistered flow {}", pkt.flow));
        let start = v.max(fs.last_finish);
        let finish = start + fs.weight.tag_span(pkt.len);
        fs.last_finish = finish;
        let was_idle = fs.queue.is_empty();
        fs.queue.push_back(QueuedPkt { pkt, start, finish });
        if was_idle {
            self.heap.push(Reverse((finish, pkt.uid, pkt.flow)));
        }
        self.queued += 1;
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        loop {
            let Reverse((finish, uid, flow)) = self.heap.pop()?;
            // An entry is live only if it matches the flow's current
            // head (uids are never reused); anything else is stale —
            // skip it without disturbing the exact `queued` count.
            let Some(fs) = self.flows.get_mut(&flow) else {
                continue;
            };
            if fs.queue.front().map(|h| h.pkt.uid) != Some(uid) {
                continue;
            }
            let qp = fs.queue.pop_front().expect("checked non-empty front");
            if let Some(next) = fs.queue.front() {
                self.heap.push(Reverse((next.finish, next.pkt.uid, flow)));
            }
            self.queued -= 1;
            self.v = finish;
            // Pull the next dequeue candidate's head line in early (see
            // sfq_core::prefetch — deep backlogs put it out of cache).
            if let Some(&Reverse((_, _, nf))) = self.heap.peek() {
                if let Some(h) = self.flows.get(&nf).and_then(|f| f.queue.front()) {
                    sfq_core::prefetch::prefetch_read(h);
                }
            }
            return Some(qp.pkt);
        }
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.queue.len())
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        match self.flows.get(&flow) {
            Some(fs) if fs.queue.is_empty() => {
                self.flows.remove(&flow);
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> &'static str {
        "SCFQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn serves_by_finish_tag() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        s.add_flow(FlowId(2), Rate::bps(2_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0); // F = 1
        let b = pf.make(FlowId(2), Bytes::new(125), t0); // F = 1/2
        s.enqueue(t0, a);
        s.enqueue(t0, b);
        assert_eq!(s.dequeue(t0).unwrap().uid, b.uid);
        assert_eq!(s.dequeue(t0).unwrap().uid, a.uid);
    }

    #[test]
    fn virtual_time_is_finish_tag_of_served_packet() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0);
        s.enqueue(t0, a);
        assert_eq!(s.virtual_time(), Ratio::ZERO);
        let _ = s.dequeue(t0);
        assert_eq!(s.virtual_time(), Ratio::ONE);
        // New arrival sees v = 1: S = max(1, F_prev=1) = 1.
        let b = pf.make(FlowId(1), Bytes::new(125), t0);
        s.enqueue(t0, b);
        assert_eq!(s.tags_of(b.uid).unwrap().0, Ratio::ONE);
    }

    #[test]
    fn scfq_delays_own_flow_behind_others_finish_tags() {
        // The SCFQ pathology: a newly arrived packet of a slow flow has
        // a large finish tag and waits behind every queued packet with a
        // smaller one, even ones that arrived later.
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(100)); // slow flow: span 10
        s.add_flow(FlowId(2), Rate::bps(1_000)); // fast flow: span 1
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let slow = pf.make(FlowId(1), Bytes::new(125), t0); // F = 10
        s.enqueue(t0, slow);
        let mut fast = Vec::new();
        for _ in 0..5 {
            let p = pf.make(FlowId(2), Bytes::new(125), t0); // F = 1..5
            s.enqueue(t0, p);
            fast.push(p.uid);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(t0).map(|p| p.uid)).collect();
        assert_eq!(order[..5], fast[..]);
        assert_eq!(order[5], slow.uid);
    }

    #[test]
    fn empty_and_counts() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        assert!(s.dequeue(SimTime::ZERO).is_none());
        let mut pf = PacketFactory::new();
        s.enqueue(
            SimTime::ZERO,
            pf.make(FlowId(1), Bytes::new(10), SimTime::ZERO),
        );
        assert_eq!((s.len(), s.backlog(FlowId(1))), (1, 1));
        let _ = s.dequeue(SimTime::ZERO);
        assert!(s.is_empty());
    }
}
