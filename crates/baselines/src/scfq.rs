//! Self-Clocked Fair Queuing (Golestani '94; analyzed in [8] of the
//! paper).
//!
//! SCFQ approximates the GPS virtual time with the *finish* tag of the
//! packet currently in service, making `v(t)` O(1) to compute. Packets
//! are tagged with Eqs. 4–5 (same recurrence as SFQ) but served in
//! increasing **finish**-tag order. Its fairness measure equals SFQ's
//! (`l_f^max/r_f + l_m^max/r_m`), but its maximum delay exceeds SFQ's by
//! `l_f^j/r_f^j − l_f^j/C` (Eqs. 56–57) — the gap the paper quantifies
//! as 24.4 ms for a 64 Kb/s flow with 200-byte packets on a 100 Mb/s
//! link.

use sfq_core::flowq::{FifoBackend, FlowFifos};
use sfq_core::obs::{FlowChange, NoopObserver, SchedEvent, SchedObserver};
use sfq_core::pool::PoolStats;
use sfq_core::{FlowId, Packet, SchedError, Scheduler, TelemetrySink};
use simtime::{Rate, Ratio, SimTime};
use std::cell::Cell;

#[derive(Debug)]
struct FlowExt {
    weight: Rate,
    last_finish: Ratio,
}

/// The Self-Clocked Fair Queuing scheduler.
///
/// Packets live in per-flow FIFOs with a head-of-flow heap keyed by
/// `(finish, uid)` — the shared [`sfq_core::flowq::FlowFifos`]
/// structure — so heap cost scales with backlogged flows, not queued
/// packets. Generic over an observer (see [`sfq_core::obs`]); the
/// default no-op compiles away.
#[derive(Debug)]
pub struct Scfq<O: SchedObserver = NoopObserver> {
    /// Key `(finish, uid)`; per-packet metadata carries the start tag.
    q: FlowFifos<(Ratio, u64), FlowExt, Ratio>,
    /// v(t): finish tag of the packet in service (kept after service so
    /// arrivals between departures see the last served packet's tag).
    v: Ratio,
    /// Virtual-time rebasing threshold in magnitude bits (`None` =
    /// disabled). Same integer-baseline mechanism as
    /// `sfq_core::Sfq::enable_rebasing`.
    rebase_bits: Option<u32>,
    /// Number of rebases applied so far.
    rebases: u64,
    /// Lazy flow GC armed (see [`Scfq::enable_flow_gc`]).
    gc: bool,
    obs: O,
    /// Counter-page sink (see [`Scfq::attach_telemetry`]).
    tele: Option<TelemetrySink>,
}

impl Scfq {
    /// New SCFQ scheduler.
    pub fn new() -> Self {
        Self::with_observer(NoopObserver)
    }
}

impl<O: SchedObserver> Scfq<O> {
    /// New SCFQ scheduler reporting events to `obs`.
    pub fn with_observer(obs: O) -> Self {
        Self::with_parts(obs, FifoBackend::default())
    }

    /// New SCFQ scheduler with an explicit [`FifoBackend`] (owned =
    /// differential oracle).
    pub fn with_parts(obs: O, backend: FifoBackend) -> Self {
        Scfq {
            q: FlowFifos::new_with("SCFQ", backend),
            v: Ratio::ZERO,
            rebase_bits: None,
            rebases: 0,
            gc: false,
            obs,
            tele: None,
        }
    }

    /// Attach a plain-write counter-page sink (see
    /// `sfq_core::Sfq::attach_telemetry` and `docs/telemetry.md`).
    pub fn attach_telemetry(&mut self, sink: TelemetrySink) {
        self.tele = Some(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.tele.as_ref()
    }

    /// Enable lazy flow GC (pooled backend only): a drained flow is
    /// reclaimed once `last_finish ≤ ⌊v(t)⌋` — the floor makes the
    /// predicate robust to the pico-grid snap applied at enqueue, so a
    /// revived flow recomputes `S = max(v, 0)` identically.
    pub fn enable_flow_gc(&mut self) {
        self.gc = true;
        self.q.enable_gc();
    }

    /// Cap the pooled backend's packet-slot footprint; exhaustion
    /// surfaces as [`SchedError::BufferFull`] from `try_enqueue`.
    pub fn set_pool_limit(&mut self, limit: Option<usize>) {
        self.q.set_pool_limit(limit);
    }

    /// Pool accounting (`None` on the owned backend).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.q.pool_stats()
    }

    /// Currently registered flows.
    pub fn live_flows(&self) -> usize {
        self.q.live_flows()
    }

    fn gc_step(&mut self) {
        if !self.gc {
            return;
        }
        let horizon = Ratio::from_int(self.v.floor());
        self.q
            .gc_step(sfq_core::flowq::GC_BUDGET, |ext| ext.last_finish <= horizon);
    }

    /// Enable virtual-time rebasing: whenever `v(t)`'s magnitude
    /// exceeds `threshold_bits` (checked at enqueue), and whenever the
    /// queue drains (SCFQ's busy-period boundary), the integer part of
    /// `v(t)` is subtracted from every live tag and per-flow
    /// `last_finish`. An integer shift commutes exactly with the Eq. 4/5
    /// recurrence, comparisons, and the pico-grid snap, so dequeue
    /// order is bit-identical to the un-rebased scheduler.
    pub fn enable_rebasing(&mut self, threshold_bits: u32) {
        self.rebase_bits = Some(threshold_bits);
    }

    /// Number of rebases applied so far.
    pub fn rebases(&self) -> u64 {
        self.rebases
    }

    /// Rebase immediately (all-or-nothing; see
    /// `sfq_core::Sfq::rebase`). Returns the baseline subtracted.
    pub fn rebase(&mut self) -> Ratio {
        let base = Ratio::from_int(self.v.floor());
        if !base.is_positive() {
            return Ratio::ZERO;
        }
        let ok = Cell::new(true);
        let check = |r: Ratio| {
            if r.checked_sub(base).is_none() {
                ok.set(false);
            }
        };
        check(self.v);
        self.q.retag_all(
            |key, start| {
                check(key.0);
                check(*start);
            },
            |ext| check(ext.last_finish),
        );
        if !ok.get() {
            return Ratio::ZERO;
        }
        let shift = |r: Ratio| r.checked_sub(base).unwrap_or(r);
        self.v = shift(self.v);
        self.q.retag_all(
            |key, start| {
                key.0 = shift(key.0);
                *start = shift(*start);
            },
            |ext| ext.last_finish = shift(ext.last_finish),
        );
        self.rebases += 1;
        base
    }

    fn maybe_rebase_eager(&mut self) {
        let Some(bits) = self.rebase_bits else {
            return;
        };
        if self.v.magnitude_bits() > bits {
            self.rebase();
        }
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consume the scheduler, returning the observer.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// Current virtual time (finish tag of packet in service).
    pub fn virtual_time(&self) -> Ratio {
        self.v
    }

    /// Tags of a queued packet. Diagnostic accessor (tests/telemetry):
    /// scans the per-flow FIFOs rather than taxing the hot path with a
    /// uid index.
    pub fn tags_of(&self, uid: u64) -> Option<(Ratio, Ratio)> {
        self.q
            .find(uid)
            .map(|(&(finish, _), &start)| (start, finish))
    }

    /// Entries in the head-of-flow heap (diagnostic: ≤ backlogged flows
    /// plus any stale entries awaiting lazy reclamation).
    pub fn head_heap_len(&self) -> usize {
        self.q.head_heap_len()
    }

    /// Live weight reconfiguration under the tag-rewrite rule (see
    /// `sfq_core::Sfq::try_set_weight` and `docs/robustness.md`): the
    /// backlogged head keeps its start/finish tags (its finish-ordered
    /// heap entry stays valid), every later queued packet is re-chained
    /// at the new rate (`S_j := F_{j-1}`, `F_j := S_j + l_j / r_new`),
    /// and `last_finish` becomes the rewritten tail finish. Idle flows
    /// only have their registered weight updated. All-or-nothing via a
    /// dry overflow pass.
    pub fn try_set_weight(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        if weight.as_bps() == 0 {
            return Err(SchedError::ZeroWeight(flow));
        }
        if self.q.ext(flow).is_none() {
            return Err(SchedError::UnknownFlow(flow));
        }
        if self.q.backlog(flow) == 0 {
            self.q
                .retag_flow(flow, |_, _, _, _| {}, |ext| ext.weight = weight);
        } else {
            // Dry pass: chain new finishes from the (unchanged) head
            // finish, verifying every step fits before mutating.
            let ok = Cell::new(true);
            let prev = Cell::new(Ratio::ZERO);
            self.q.retag_flow(
                flow,
                |pos, pkt, key, _start| {
                    if pos == 0 {
                        prev.set(key.0);
                    } else {
                        match prev.get().checked_add(weight.tag_span(pkt.len)) {
                            Some(f) => prev.set(f),
                            None => ok.set(false),
                        }
                    }
                },
                |_| {},
            );
            if !ok.get() {
                return Err(SchedError::TagOverflow);
            }
            let tail_finish = prev.get();
            // Apply pass: verified above, so checked_add cannot fail.
            let prev = Cell::new(Ratio::ZERO);
            self.q.retag_flow(
                flow,
                |pos, pkt, key, start| {
                    if pos == 0 {
                        prev.set(key.0);
                        return;
                    }
                    let s = prev.get();
                    let finish = s.checked_add(weight.tag_span(pkt.len)).unwrap_or(s);
                    key.0 = finish;
                    *start = s;
                    prev.set(finish);
                },
                |ext| {
                    ext.weight = weight;
                    ext.last_finish = tail_finish;
                },
            );
        }
        self.obs.on_flow_change(flow, &FlowChange::Added { weight });
        Ok(())
    }

    /// Drop a flow and all of its queued packets immediately, without
    /// the idle-only guard of [`Scheduler::remove_flow`]. Returns the
    /// number of packets discarded.
    pub fn force_remove_flow(&mut self, flow: FlowId) -> usize {
        match self.q.force_remove_flow(flow) {
            Some(dropped) => {
                if let Some(t) = &self.tele {
                    t.record_force_removed(dropped);
                }
                self.obs
                    .on_flow_change(flow, &FlowChange::ForceRemoved { dropped });
                dropped
            }
            None => 0,
        }
    }
}

impl Default for Scfq {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: SchedObserver> Scheduler for Scfq<O> {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        assert!(weight.as_bps() > 0, "SCFQ: flow weight must be positive");
        self.q
            .upsert_flow(flow, || FlowExt {
                weight,
                last_finish: Ratio::ZERO,
            })
            .weight = weight;
        self.obs.on_flow_change(flow, &FlowChange::Added { weight });
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        self.try_enqueue(now, pkt)
            .unwrap_or_else(|e| panic!("SCFQ: {e}"));
    }

    fn try_enqueue(&mut self, now: SimTime, pkt: Packet) -> Result<(), SchedError> {
        if self.rebase_bits.is_some() {
            self.maybe_rebase_eager();
        }
        // Snapped at the read point to bound tag-denominator growth
        // (no-op below denominators of 1e12; see Ratio::snap_pico).
        let v = self.v.snap_pico();
        let uid = pkt.uid;
        let len = pkt.len;
        let ((finish, _), start) = self.q.try_push_with(pkt, |ext| {
            let start = v.max(ext.last_finish);
            let finish = start.checked_add(ext.weight.tag_span(len))?;
            ext.last_finish = finish;
            Some(((finish, uid), start))
        })?;
        if let Some(t) = &self.tele {
            t.record_enqueue(len.as_u64(), self.q.len());
        }
        self.obs.on_enqueue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid,
            len,
            start_tag: start,
            finish_tag: finish,
            v,
        });
        Ok(())
    }

    fn enqueue_batch(&mut self, now: SimTime, pkts: &[Packet]) {
        self.try_enqueue_batch(now, pkts)
            .unwrap_or_else(|e| panic!("SCFQ: {e}"));
    }

    fn try_enqueue_batch(&mut self, now: SimTime, pkts: &[Packet]) -> Result<(), SchedError> {
        // v(t) changes only at dequeues, so one eager-rebase check and
        // one pico-grid snap serve the whole pure-enqueue run,
        // bit-identically to the per-packet loop (see Sfq's override).
        if self.rebase_bits.is_some() {
            self.maybe_rebase_eager();
        }
        let v = self.v.snap_pico();
        for &pkt in pkts {
            let uid = pkt.uid;
            let len = pkt.len;
            let ((finish, _), start) = self.q.try_push_with(pkt, |ext| {
                let start = v.max(ext.last_finish);
                let finish = start.checked_add(ext.weight.tag_span(len))?;
                ext.last_finish = finish;
                Some(((finish, uid), start))
            })?;
            if let Some(t) = &self.tele {
                t.record_enqueue(len.as_u64(), self.q.len());
            }
            self.obs.on_enqueue(&SchedEvent {
                time: now,
                flow: pkt.flow,
                uid,
                len,
                start_tag: start,
                finish_tag: finish,
                v,
            });
        }
        Ok(())
    }

    fn dequeue_batch(&mut self, now: SimTime, max: usize, out: &mut Vec<Packet>) -> usize {
        let Scfq {
            q, v, obs, tele, ..
        } = self;
        let n = q.pop_min_batch(max, |pkt, (finish, _), start| {
            *v = finish;
            if let Some(t) = tele {
                t.record_dequeue(pkt.flow.0, pkt.len.as_u64(), pkt.arrival, now);
            }
            obs.on_dequeue(&SchedEvent {
                time: now,
                flow: pkt.flow,
                uid: pkt.uid,
                len: pkt.len,
                start_tag: start,
                finish_tag: finish,
                v: finish,
            });
            out.push(pkt);
        });
        // The per-packet path rebases only when a dequeue empties the
        // queue, i.e. after the batch's final packet; events always
        // carry pre-rebase tags, so emitting them in the closure above
        // is identical.
        if n > 0 && self.rebase_bits.is_some() && self.q.is_empty() {
            self.rebase();
        }
        if n > 0 {
            self.gc_step();
        }
        n
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let (pkt, (finish, _), start) = self.q.pop_min()?;
        self.v = finish;
        if self.rebase_bits.is_some() && self.q.is_empty() {
            // Queue drained — SCFQ's busy-period boundary and the
            // cheapest rebase point (only per-flow last_finish state).
            self.rebase();
        }
        if let Some(t) = &self.tele {
            t.record_dequeue(pkt.flow.0, pkt.len.as_u64(), pkt.arrival, now);
        }
        self.obs.on_dequeue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: start,
            finish_tag: finish,
            v: finish,
        });
        self.gc_step();
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.q.backlog(flow)
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        let removed = self.q.remove_flow(flow);
        if removed {
            self.obs.on_flow_change(flow, &FlowChange::Removed);
        }
        removed
    }

    fn force_remove_flow(&mut self, flow: FlowId) -> usize {
        Scfq::force_remove_flow(self, flow)
    }

    fn try_set_weight(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        Scfq::try_set_weight(self, flow, weight)
    }

    fn drop_head(&mut self, flow: FlowId) -> Option<Packet> {
        let (pkt, (finish, _), start) = self.q.drop_front(flow)?;
        if let Some(t) = &self.tele {
            t.record_head_drop();
        }
        self.obs.on_drop(&SchedEvent {
            time: pkt.arrival,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: start,
            finish_tag: finish,
            v: self.v,
        });
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "SCFQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn serves_by_finish_tag() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        s.add_flow(FlowId(2), Rate::bps(2_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0); // F = 1
        let b = pf.make(FlowId(2), Bytes::new(125), t0); // F = 1/2
        s.enqueue(t0, a);
        s.enqueue(t0, b);
        assert_eq!(s.dequeue(t0).unwrap().uid, b.uid);
        assert_eq!(s.dequeue(t0).unwrap().uid, a.uid);
    }

    #[test]
    fn virtual_time_is_finish_tag_of_served_packet() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0);
        s.enqueue(t0, a);
        assert_eq!(s.virtual_time(), Ratio::ZERO);
        let _ = s.dequeue(t0);
        assert_eq!(s.virtual_time(), Ratio::ONE);
        // New arrival sees v = 1: S = max(1, F_prev=1) = 1.
        let b = pf.make(FlowId(1), Bytes::new(125), t0);
        s.enqueue(t0, b);
        assert_eq!(s.tags_of(b.uid).unwrap().0, Ratio::ONE);
    }

    #[test]
    fn scfq_delays_own_flow_behind_others_finish_tags() {
        // The SCFQ pathology: a newly arrived packet of a slow flow has
        // a large finish tag and waits behind every queued packet with a
        // smaller one, even ones that arrived later.
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(100)); // slow flow: span 10
        s.add_flow(FlowId(2), Rate::bps(1_000)); // fast flow: span 1
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let slow = pf.make(FlowId(1), Bytes::new(125), t0); // F = 10
        s.enqueue(t0, slow);
        let mut fast = Vec::new();
        for _ in 0..5 {
            let p = pf.make(FlowId(2), Bytes::new(125), t0); // F = 1..5
            s.enqueue(t0, p);
            fast.push(p.uid);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(t0).map(|p| p.uid)).collect();
        assert_eq!(order[..5], fast[..]);
        assert_eq!(order[5], slow.uid);
    }

    #[test]
    fn empty_and_counts() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        assert!(s.dequeue(SimTime::ZERO).is_none());
        let mut pf = PacketFactory::new();
        s.enqueue(
            SimTime::ZERO,
            pf.make(FlowId(1), Bytes::new(10), SimTime::ZERO),
        );
        assert_eq!((s.len(), s.backlog(FlowId(1))), (1, 1));
        let _ = s.dequeue(SimTime::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn force_remove_discards_backlog() {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        s.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        s.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        s.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        let b = pf.make(FlowId(2), Bytes::new(125), t0);
        s.enqueue(t0, b);
        assert_eq!(s.force_remove_flow(FlowId(1)), 2);
        assert_eq!(s.len(), 1);
        // The stale heap entry is skipped; flow 2 drains cleanly.
        assert_eq!(s.dequeue(t0).unwrap().uid, b.uid);
        assert!(s.is_empty());
        assert_eq!(s.force_remove_flow(FlowId(9)), 0);
    }
}
