//! Exact fluid (bit-by-bit weighted round robin / GPS) virtual clock.
//!
//! WFQ and FQS define the virtual time `v(t)` of Eq. 3 as the round
//! number of a hypothetical bit-by-bit weighted round robin server of
//! fixed capacity `C`:
//!
//! ```text
//! dv(t)/dt = C / Σ_{j ∈ B(t)} r_j
//! ```
//!
//! where `B(t)` is the set of flows backlogged *in the fluid system*.
//! This module simulates that fluid system exactly: between arrival
//! events, `v` advances piecewise-linearly, with slope changing whenever
//! a flow's fluid backlog drains (i.e. `v` crosses the flow's largest
//! finish tag). All arithmetic is rational, so the emulation is exact —
//! which the paper notes is precisely what makes WFQ expensive.
//!
//! When the fluid system goes idle, `v` freezes and the next busy
//! period continues from the same value.
//!
//! ## Precision
//!
//! Advancing `v` divides by the backlogged weight sum, which changes
//! over time; kept fully exact, the rational denominators would grow
//! without bound (the lcm of every distinct weight sum crossed) and
//! overflow `i128` on long runs. The fluid clock therefore snaps `v`
//! and its internal timeline to a **picosecond grid** after every
//! update: each event contributes at most 1e-12 s of drift, eleven
//! orders of magnitude below the millisecond-scale quantities the
//! paper's experiments compare. Tag *chains* (`S`, `F` per flow) remain
//! exact.

use sfq_core::FlowId;
use simtime::{Rate, Ratio, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Snap to the picosecond grid (see [`Ratio::snap_pico`]).
fn snap_pico(r: Ratio) -> Ratio {
    r.snap_pico()
}

/// Exact GPS fluid virtual clock with assumed capacity `C`.
#[derive(Debug)]
pub struct GpsClock {
    capacity: Rate,
    /// Current virtual time.
    v: Ratio,
    /// Real time up to which `v` has been advanced.
    last_t: SimTime,
    /// Largest finish tag per flow (the flow's fluid-backlog exit point).
    exit: HashMap<FlowId, Ratio>,
    /// Exit points of currently fluid-backlogged flows.
    backlogged: BTreeSet<(Ratio, FlowId)>,
    /// Σ r_j over fluid-backlogged flows.
    weight_sum: Ratio,
    weights: HashMap<FlowId, Rate>,
}

impl GpsClock {
    /// New fluid clock emulating a constant-rate server of capacity
    /// `capacity` (the paper's `C` in Eq. 3).
    pub fn new(capacity: Rate) -> Self {
        assert!(capacity.as_bps() > 0, "GPS capacity must be positive");
        GpsClock {
            capacity,
            v: Ratio::ZERO,
            last_t: SimTime::ZERO,
            exit: HashMap::new(),
            backlogged: BTreeSet::new(),
            weight_sum: Ratio::ZERO,
            weights: HashMap::new(),
        }
    }

    /// Register a flow's weight.
    pub fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        assert!(weight.as_bps() > 0, "GPS weight must be positive");
        self.weights.insert(flow, weight);
    }

    /// Advance the fluid system to real time `t` and return `v(t)`.
    pub fn advance(&mut self, t: SimTime) -> Ratio {
        assert!(t >= self.last_t, "GPS clock driven backwards");
        loop {
            let Some(&(next_exit, flow)) = self.backlogged.iter().next() else {
                // Fluid-idle: v frozen.
                self.last_t = t;
                return self.v;
            };
            // Real time needed for v to reach next_exit at slope C/W:
            // dt = (next_exit - v) * W / C.
            let dt = (next_exit - self.v) * self.weight_sum / self.capacity.as_ratio();
            let exit_time = self.last_t + simtime::SimDuration::from_ratio(snap_pico(dt));
            if exit_time <= t {
                // Flow's fluid backlog drains before (or at) t. Snap:
                // tags chain off v, so keeping cross-flow exact tag
                // denominators here would compound without bound.
                self.v = snap_pico(next_exit);
                self.last_t = SimTime::from_ratio(snap_pico(exit_time.as_ratio()));
                self.backlogged.remove(&(next_exit, flow));
                let w = self.weights[&flow];
                self.weight_sum -= w.as_ratio();
            } else {
                let span = (t - self.last_t).as_ratio();
                self.v = snap_pico(self.v + self.capacity.as_ratio() * span / self.weight_sum);
                self.last_t = t;
                return self.v;
            }
        }
    }

    /// Record a packet arrival in the fluid system at real time `t`,
    /// returning its `(start, finish)` tags per Eqs. 1–2. The caller
    /// must keep per-flow `F(p^{j-1})` state — pass it as `last_finish`.
    pub fn on_arrival(
        &mut self,
        t: SimTime,
        flow: FlowId,
        len_span: Ratio,
        last_finish: Ratio,
    ) -> (Ratio, Ratio) {
        let v = self.advance(t);
        let start = v.max(last_finish);
        let finish = start + len_span;
        // Extend the flow's fluid-backlog exit point.
        if let Some(old) = self.exit.insert(flow, finish) {
            if self.backlogged.remove(&(old, flow)) {
                let w = self.weights[&flow];
                self.weight_sum -= w.as_ratio();
            }
        }
        self.backlogged.insert((finish, flow));
        self.weight_sum += self.weights[&flow].as_ratio();
        (start, finish)
    }

    /// Current virtual time without advancing (for tests).
    pub fn peek_v(&self) -> Ratio {
        self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_advances_at_full_rate_over_weight() {
        // Example 2 setup: capacity C, one flow of weight 1 pkt/s
        // backlogged during [0,1) ⇒ v(1) = C.
        let c = 10u64; // C = 10 "packets"/s with 1-byte packets at 8 bps units
        let mut gps = GpsClock::new(Rate::bps(8 * c));
        gps.add_flow(FlowId(1), Rate::bps(8));
        // Flow 1 sends C+1 unit packets at t=0; spans l/r = 1 each.
        let mut lf = Ratio::ZERO;
        for _ in 0..=c {
            let (_s, f) = gps.on_arrival(SimTime::ZERO, FlowId(1), Ratio::ONE, lf);
            lf = f;
        }
        let v1 = gps.advance(SimTime::from_secs(1));
        assert_eq!(v1, Ratio::from_int(c as i128));
    }

    #[test]
    fn two_equal_flows_halve_the_slope() {
        let mut gps = GpsClock::new(Rate::bps(16));
        gps.add_flow(FlowId(1), Rate::bps(8));
        gps.add_flow(FlowId(2), Rate::bps(8));
        // Each flow sends a large burst (span 100) at t=0.
        gps.on_arrival(SimTime::ZERO, FlowId(1), Ratio::from_int(100), Ratio::ZERO);
        gps.on_arrival(SimTime::ZERO, FlowId(2), Ratio::from_int(100), Ratio::ZERO);
        // Slope = C/(r1+r2) = 16/16 = 1 virtual unit per second.
        let v = gps.advance(SimTime::from_secs(5));
        assert_eq!(v, Ratio::from_int(5));
    }

    #[test]
    fn slope_doubles_when_one_fluid_backlog_drains() {
        let mut gps = GpsClock::new(Rate::bps(16));
        gps.add_flow(FlowId(1), Rate::bps(8));
        gps.add_flow(FlowId(2), Rate::bps(8));
        // Flow 1: span 2 (drains at v=2); flow 2: span 100.
        gps.on_arrival(SimTime::ZERO, FlowId(1), Ratio::from_int(2), Ratio::ZERO);
        gps.on_arrival(SimTime::ZERO, FlowId(2), Ratio::from_int(100), Ratio::ZERO);
        // Slope 1 until v=2 (at t=2), then slope 2.
        let v = gps.advance(SimTime::from_secs(4));
        assert_eq!(v, Ratio::from_int(2 + 4));
    }

    #[test]
    fn v_freezes_when_fluid_idle() {
        let mut gps = GpsClock::new(Rate::bps(16));
        gps.add_flow(FlowId(1), Rate::bps(8));
        gps.on_arrival(SimTime::ZERO, FlowId(1), Ratio::ONE, Ratio::ZERO);
        // Drains at v=1 which happens at t = 1 * (8/16) = 0.5 s.
        let v = gps.advance(SimTime::from_secs(10));
        assert_eq!(v, Ratio::ONE);
        let v2 = gps.advance(SimTime::from_secs(20));
        assert_eq!(v2, Ratio::ONE);
    }

    #[test]
    fn arrival_to_idle_system_starts_at_frozen_v() {
        let mut gps = GpsClock::new(Rate::bps(16));
        gps.add_flow(FlowId(1), Rate::bps(8));
        gps.on_arrival(SimTime::ZERO, FlowId(1), Ratio::ONE, Ratio::ZERO);
        let _ = gps.advance(SimTime::from_secs(10));
        let (s, f) = gps.on_arrival(SimTime::from_secs(10), FlowId(1), Ratio::ONE, Ratio::ONE);
        assert_eq!(s, Ratio::ONE);
        assert_eq!(f, Ratio::from_int(2));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn driving_clock_backwards_panics() {
        let mut gps = GpsClock::new(Rate::bps(16));
        let _ = gps.advance(SimTime::from_secs(1));
        let _ = gps.advance(SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The fluid clock is monotone, and its slope never exceeds
        /// C / min-backlogged-weight nor drops below C / Σ weights
        /// while anything is backlogged.
        #[test]
        fn v_monotone_and_slope_bounded(
            arrivals in prop::collection::vec((0u32..3, 0i64..5_000, 1u64..50), 1..40),
        ) {
            let c = Rate::bps(9_000);
            let weights = [Rate::bps(1_000), Rate::bps(2_000), Rate::bps(3_000)];
            let mut gps = GpsClock::new(c);
            for (i, w) in weights.iter().enumerate() {
                gps.add_flow(FlowId(i as u32), *w);
            }
            let mut evs: Vec<(i64, u32, u64)> =
                arrivals.iter().map(|&(f, t, span)| (t, f, span)).collect();
            evs.sort();
            let mut last_finish = [Ratio::ZERO; 3];
            let mut prev_v = Ratio::ZERO;
            let mut prev_t = SimTime::ZERO;
            for (t_ms, f, span) in evs {
                let t = SimTime::from_millis(t_ms as i128);
                let v = gps.advance(t);
                prop_assert!(v >= prev_v, "v went backwards");
                // Max slope C / min weight = 9: v growth bounded.
                let dv = v - prev_v;
                let dt = (t - prev_t).as_ratio();
                prop_assert!(
                    dv <= dt * Ratio::from_int(9),
                    "slope above C/min_weight"
                );
                prev_v = v;
                prev_t = t;
                let (_s, fin) = gps.on_arrival(
                    t,
                    FlowId(f),
                    Ratio::from_int(span as i128),
                    last_finish[f as usize],
                );
                last_finish[f as usize] = fin;
            }
        }

        /// Tags produced via the clock respect the WFQ recurrence:
        /// S = max(v, F_prev), F = S + span.
        #[test]
        fn arrival_tags_follow_recurrence(
            spans in prop::collection::vec(1u64..100, 1..30),
        ) {
            let mut gps = GpsClock::new(Rate::bps(1_000));
            gps.add_flow(FlowId(1), Rate::bps(1_000));
            let mut lf = Ratio::ZERO;
            for (k, span) in spans.iter().enumerate() {
                let t = SimTime::from_millis(k as i128 * 10);
                let v = gps.advance(t);
                let (s, f) =
                    gps.on_arrival(t, FlowId(1), Ratio::from_int(*span as i128), lf);
                prop_assert_eq!(s, v.max(lf));
                prop_assert_eq!(f, s + Ratio::from_int(*span as i128));
                lf = f;
            }
        }
    }
}
