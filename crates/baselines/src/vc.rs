//! Virtual Clock (Zhang '90).
//!
//! Each packet is stamped `VC(p_f^j) = max(A(p_f^j), VC(p_f^{j-1})) +
//! l_f^j / r_f` — i.e. its expected departure time had the flow streamed
//! at exactly its reserved rate — and packets are served in increasing
//! timestamp order. Virtual Clock gives the same delay guarantee as WFQ
//! but is *unfair*: a flow that used idle bandwidth builds up large
//! timestamps and is punished later (the paper cites this to motivate
//! fair schedulers for VBR video). It is also the GSQ discipline inside
//! Fair Airport.

use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A packet in its flow's FIFO with the stamp assigned at arrival.
#[derive(Clone, Copy, Debug)]
struct QueuedPkt {
    pkt: Packet,
    stamp: SimTime,
}

#[derive(Debug)]
struct FlowState {
    weight: Rate,
    /// `VC(p_f^{j-1})` — the auxiliary virtual clock, in real seconds.
    auxvc: SimTime,
    /// Backlogged packets in arrival order. `VC` stamps are strictly
    /// increasing within a flow (the `l/r` term is positive), so the
    /// FIFO head carries the flow's minimum stamp and the scheduling
    /// heap only needs heads.
    queue: VecDeque<QueuedPkt>,
}

/// The (work-conserving) Virtual Clock scheduler.
///
/// Packets live in per-flow FIFOs; the heap holds `(stamp, uid, flow)`
/// for each backlogged flow's head only (same head-of-flow structure as
/// [`sfq_core::Sfq`]), so heap cost scales with backlogged flows, not
/// queued packets.
#[derive(Debug)]
pub struct VirtualClock {
    flows: HashMap<FlowId, FlowState>,
    heap: BinaryHeap<Reverse<(SimTime, u64, FlowId)>>,
    queued: usize,
}

impl VirtualClock {
    /// New Virtual Clock scheduler.
    pub fn new() -> Self {
        VirtualClock {
            flows: HashMap::new(),
            heap: BinaryHeap::new(),
            queued: 0,
        }
    }

    /// Timestamp assigned to a queued packet. Diagnostic accessor
    /// (tests/telemetry): scans the per-flow FIFOs rather than taxing
    /// the hot path with a uid index.
    pub fn stamp_of(&self, uid: u64) -> Option<SimTime> {
        self.flows
            .values()
            .flat_map(|f| f.queue.iter())
            .find(|qp| qp.pkt.uid == uid)
            .map(|qp| qp.stamp)
    }

    /// Entries in the head-of-flow heap (diagnostic: ≤ backlogged flows
    /// plus any stale entries awaiting lazy reclamation).
    pub fn head_heap_len(&self) -> usize {
        self.heap.len()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for VirtualClock {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        assert!(weight.as_bps() > 0, "VC: flow weight must be positive");
        self.flows
            .entry(flow)
            .and_modify(|f| f.weight = weight)
            .or_insert(FlowState {
                weight,
                auxvc: SimTime::ZERO,
                queue: VecDeque::new(),
            });
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        let fs = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("VC: unregistered flow {}", pkt.flow));
        let vc = now.max(fs.auxvc) + fs.weight.tx_time(pkt.len);
        fs.auxvc = vc;
        let was_idle = fs.queue.is_empty();
        fs.queue.push_back(QueuedPkt { pkt, stamp: vc });
        if was_idle {
            self.heap.push(Reverse((vc, pkt.uid, pkt.flow)));
        }
        self.queued += 1;
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        loop {
            let Reverse((_vc, uid, flow)) = self.heap.pop()?;
            // An entry is live only if it matches the flow's current
            // head (uids are never reused); anything else is stale —
            // skip it without disturbing the exact `queued` count.
            let Some(fs) = self.flows.get_mut(&flow) else {
                continue;
            };
            if fs.queue.front().map(|h| h.pkt.uid) != Some(uid) {
                continue;
            }
            let qp = fs.queue.pop_front().expect("checked non-empty front");
            if let Some(next) = fs.queue.front() {
                self.heap.push(Reverse((next.stamp, next.pkt.uid, flow)));
            }
            self.queued -= 1;
            // Pull the next dequeue candidate's head line in early (see
            // sfq_core::prefetch — deep backlogs put it out of cache).
            if let Some(&Reverse((_, _, nf))) = self.heap.peek() {
                if let Some(h) = self.flows.get(&nf).and_then(|f| f.queue.front()) {
                    sfq_core::prefetch::prefetch_read(h);
                }
            }
            return Some(qp.pkt);
        }
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.queue.len())
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        match self.flows.get(&flow) {
            Some(fs) if fs.queue.is_empty() => {
                self.flows.remove(&flow);
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> &'static str {
        "VirtualClock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn stamps_follow_reserved_rate() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000)); // 125 B -> 1 s
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0);
        let b = pf.make(FlowId(1), Bytes::new(125), t0);
        vc.enqueue(t0, a);
        vc.enqueue(t0, b);
        assert_eq!(vc.stamp_of(a.uid), Some(SimTime::from_secs(1)));
        assert_eq!(vc.stamp_of(b.uid), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn idle_bandwidth_usage_is_punished() {
        // The unfairness the paper cites: flow 1 bursts while alone,
        // building auxVC far into the future. When flow 2 arrives, all
        // of flow 2's packets beat flow 1's queued ones.
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000));
        vc.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        for _ in 0..10 {
            vc.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        }
        // Flow 1's stamps run 1..10 s. At t=1.5 s flow 2 arrives and is
        // stamped 2.5 s: it jumps ahead of flow 1's packets stamped 3 s
        // and later, punishing flow 1 for its earlier burst.
        let t = SimTime::from_millis(1500);
        let p2 = pf.make(FlowId(2), Bytes::new(125), t);
        vc.enqueue(t, p2);
        assert_eq!(vc.stamp_of(p2.uid), Some(SimTime::from_millis(2500)));
        let order: Vec<u32> = std::iter::from_fn(|| vc.dequeue(t).map(|p| p.flow.0)).collect();
        let pos2 = order.iter().position(|&f| f == 2).unwrap();
        assert_eq!(
            pos2, 2,
            "flow 2 jumps all flow-1 packets stamped after 2.5s"
        );
    }

    #[test]
    fn arrival_after_idle_resets_to_real_time() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let a = pf.make(FlowId(1), Bytes::new(125), SimTime::ZERO);
        vc.enqueue(SimTime::ZERO, a);
        let _ = vc.dequeue(SimTime::ZERO);
        // Long idle: next packet stamps from its arrival time.
        let t9 = SimTime::from_secs(9);
        let b = pf.make(FlowId(1), Bytes::new(125), t9);
        vc.enqueue(t9, b);
        assert_eq!(vc.stamp_of(b.uid), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn counts() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(8));
        assert!(vc.dequeue(SimTime::ZERO).is_none());
        let mut pf = PacketFactory::new();
        vc.enqueue(
            SimTime::ZERO,
            pf.make(FlowId(1), Bytes::new(1), SimTime::ZERO),
        );
        assert_eq!(vc.len(), 1);
        assert_eq!(vc.backlog(FlowId(1)), 1);
        let _ = vc.dequeue(SimTime::ZERO);
        assert!(vc.is_empty());
    }
}
