//! Virtual Clock (Zhang '90).
//!
//! Each packet is stamped `VC(p_f^j) = max(A(p_f^j), VC(p_f^{j-1})) +
//! l_f^j / r_f` — i.e. its expected departure time had the flow streamed
//! at exactly its reserved rate — and packets are served in increasing
//! timestamp order. Virtual Clock gives the same delay guarantee as WFQ
//! but is *unfair*: a flow that used idle bandwidth builds up large
//! timestamps and is punished later (the paper cites this to motivate
//! fair schedulers for VBR video). It is also the GSQ discipline inside
//! Fair Airport.

use sfq_core::flowq::FlowFifos;
use sfq_core::obs::{FlowChange, NoopObserver, SchedEvent, SchedObserver};
use sfq_core::{FlowId, Packet, SchedError, Scheduler};
use simtime::{Rate, SimTime};

#[derive(Debug)]
struct FlowExt {
    weight: Rate,
    /// `VC(p_f^{j-1})` — the auxiliary virtual clock, in real seconds.
    auxvc: SimTime,
}

/// The (work-conserving) Virtual Clock scheduler.
///
/// Packets live in per-flow FIFOs with a head-of-flow heap keyed by
/// `(stamp, uid)` — the shared [`sfq_core::flowq::FlowFifos`]
/// structure — so heap cost scales with backlogged flows, not queued
/// packets. Generic over an observer (see [`sfq_core::obs`]); VC has no
/// virtual-time function, so events report the real-time stamp as the
/// finish tag, `max(A, auxVC)` as the start tag, and the wall clock as
/// `v` (all exact, via [`SimTime::as_ratio`]).
#[derive(Debug)]
pub struct VirtualClock<O: SchedObserver = NoopObserver> {
    /// Key `(stamp, uid)`; per-packet metadata carries the stamp base
    /// `max(A, auxVC)` (the "start" of the packet's reserved-rate slot).
    q: FlowFifos<(SimTime, u64), FlowExt, SimTime>,
    obs: O,
}

impl VirtualClock {
    /// New Virtual Clock scheduler.
    pub fn new() -> Self {
        Self::with_observer(NoopObserver)
    }
}

impl<O: SchedObserver> VirtualClock<O> {
    /// New Virtual Clock scheduler reporting events to `obs`.
    pub fn with_observer(obs: O) -> Self {
        VirtualClock {
            q: FlowFifos::new("VC"),
            obs,
        }
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consume the scheduler, returning the observer.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// Timestamp assigned to a queued packet. Diagnostic accessor
    /// (tests/telemetry): scans the per-flow FIFOs rather than taxing
    /// the hot path with a uid index.
    pub fn stamp_of(&self, uid: u64) -> Option<SimTime> {
        self.q.find(uid).map(|(&(stamp, _), _)| stamp)
    }

    /// Entries in the head-of-flow heap (diagnostic: ≤ backlogged flows
    /// plus any stale entries awaiting lazy reclamation).
    pub fn head_heap_len(&self) -> usize {
        self.q.head_heap_len()
    }

    /// Drop a flow and all of its queued packets immediately, without
    /// the idle-only guard of [`Scheduler::remove_flow`]. Returns the
    /// number of packets discarded.
    pub fn force_remove_flow(&mut self, flow: FlowId) -> usize {
        match self.q.force_remove_flow(flow) {
            Some(dropped) => {
                self.obs
                    .on_flow_change(flow, &FlowChange::ForceRemoved { dropped });
                dropped
            }
            None => 0,
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: SchedObserver> Scheduler for VirtualClock<O> {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        assert!(weight.as_bps() > 0, "VC: flow weight must be positive");
        self.q
            .upsert_flow(flow, || FlowExt {
                weight,
                auxvc: SimTime::ZERO,
            })
            .weight = weight;
        self.obs.on_flow_change(flow, &FlowChange::Added { weight });
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        self.try_enqueue(now, pkt)
            .unwrap_or_else(|e| panic!("VC: {e}"));
    }

    fn try_enqueue(&mut self, now: SimTime, pkt: Packet) -> Result<(), SchedError> {
        let uid = pkt.uid;
        let len = pkt.len;
        // VC stamps are real-time (`SimTime`), not rationals: they track
        // the wall clock within a tx_time span, so `i128` nanoseconds
        // cannot realistically overflow and no TagOverflow path exists.
        let ((stamp, _), base) = self.q.try_push_with(pkt, |ext| {
            let base = now.max(ext.auxvc);
            let vc = base + ext.weight.tx_time(len);
            ext.auxvc = vc;
            Some(((vc, uid), base))
        })?;
        self.obs.on_enqueue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid,
            len,
            start_tag: base.as_ratio(),
            finish_tag: stamp.as_ratio(),
            v: now.as_ratio(),
        });
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let (pkt, (stamp, _), base) = self.q.pop_min()?;
        self.obs.on_dequeue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: base.as_ratio(),
            finish_tag: stamp.as_ratio(),
            v: now.as_ratio(),
        });
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.q.backlog(flow)
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        let removed = self.q.remove_flow(flow);
        if removed {
            self.obs.on_flow_change(flow, &FlowChange::Removed);
        }
        removed
    }

    fn force_remove_flow(&mut self, flow: FlowId) -> usize {
        VirtualClock::force_remove_flow(self, flow)
    }

    fn drop_head(&mut self, flow: FlowId) -> Option<Packet> {
        let (pkt, (stamp, _), base) = self.q.drop_front(flow)?;
        self.obs.on_drop(&SchedEvent {
            time: pkt.arrival,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: base.as_ratio(),
            finish_tag: stamp.as_ratio(),
            v: pkt.arrival.as_ratio(),
        });
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "VirtualClock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn stamps_follow_reserved_rate() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000)); // 125 B -> 1 s
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(125), t0);
        let b = pf.make(FlowId(1), Bytes::new(125), t0);
        vc.enqueue(t0, a);
        vc.enqueue(t0, b);
        assert_eq!(vc.stamp_of(a.uid), Some(SimTime::from_secs(1)));
        assert_eq!(vc.stamp_of(b.uid), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn idle_bandwidth_usage_is_punished() {
        // The unfairness the paper cites: flow 1 bursts while alone,
        // building auxVC far into the future. When flow 2 arrives, all
        // of flow 2's packets beat flow 1's queued ones.
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000));
        vc.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        for _ in 0..10 {
            vc.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        }
        // Flow 1's stamps run 1..10 s. At t=1.5 s flow 2 arrives and is
        // stamped 2.5 s: it jumps ahead of flow 1's packets stamped 3 s
        // and later, punishing flow 1 for its earlier burst.
        let t = SimTime::from_millis(1500);
        let p2 = pf.make(FlowId(2), Bytes::new(125), t);
        vc.enqueue(t, p2);
        assert_eq!(vc.stamp_of(p2.uid), Some(SimTime::from_millis(2500)));
        let order: Vec<u32> = std::iter::from_fn(|| vc.dequeue(t).map(|p| p.flow.0)).collect();
        let pos2 = order.iter().position(|&f| f == 2).unwrap();
        assert_eq!(
            pos2, 2,
            "flow 2 jumps all flow-1 packets stamped after 2.5s"
        );
    }

    #[test]
    fn arrival_after_idle_resets_to_real_time() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let a = pf.make(FlowId(1), Bytes::new(125), SimTime::ZERO);
        vc.enqueue(SimTime::ZERO, a);
        let _ = vc.dequeue(SimTime::ZERO);
        // Long idle: next packet stamps from its arrival time.
        let t9 = SimTime::from_secs(9);
        let b = pf.make(FlowId(1), Bytes::new(125), t9);
        vc.enqueue(t9, b);
        assert_eq!(vc.stamp_of(b.uid), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn counts() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(8));
        assert!(vc.dequeue(SimTime::ZERO).is_none());
        let mut pf = PacketFactory::new();
        vc.enqueue(
            SimTime::ZERO,
            pf.make(FlowId(1), Bytes::new(1), SimTime::ZERO),
        );
        assert_eq!(vc.len(), 1);
        assert_eq!(vc.backlog(FlowId(1)), 1);
        let _ = vc.dequeue(SimTime::ZERO);
        assert!(vc.is_empty());
    }

    #[test]
    fn force_remove_discards_backlog() {
        let mut vc = VirtualClock::new();
        vc.add_flow(FlowId(1), Rate::bps(1_000));
        vc.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        vc.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        vc.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        let b = pf.make(FlowId(2), Bytes::new(125), t0);
        vc.enqueue(t0, b);
        assert_eq!(vc.force_remove_flow(FlowId(1)), 2);
        assert_eq!(vc.len(), 1);
        assert_eq!(vc.dequeue(t0).unwrap().uid, b.uid);
        assert!(vc.is_empty());
        assert_eq!(vc.force_remove_flow(FlowId(9)), 0);
    }
}
