//! First-in-first-out — the null discipline, used as a sanity baseline
//! in benches and tests.

use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, SimTime};
use std::collections::{HashMap, VecDeque};

/// Single shared FIFO queue across all flows.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<Packet>,
    backlog: HashMap<FlowId, usize>,
}

impl Fifo {
    /// New empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Fifo {
    fn add_flow(&mut self, flow: FlowId, _weight: Rate) {
        self.backlog.entry(flow).or_insert(0);
    }

    fn enqueue(&mut self, _now: SimTime, pkt: Packet) {
        *self.backlog.entry(pkt.flow).or_insert(0) += 1;
        self.queue.push_back(pkt);
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        *self.backlog.get_mut(&pkt.flow).expect("flow counted") -= 1;
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.backlog.get(&flow).copied().unwrap_or(0)
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        match self.backlog.get(&flow) {
            Some(0) => {
                self.backlog.remove(&flow);
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn serves_in_arrival_order() {
        let mut f = Fifo::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(10), t0);
        let b = pf.make(FlowId(2), Bytes::new(10), t0);
        f.enqueue(t0, a);
        f.enqueue(t0, b);
        assert_eq!(f.dequeue(t0).unwrap().uid, a.uid);
        assert_eq!(f.dequeue(t0).unwrap().uid, b.uid);
        assert!(f.dequeue(t0).is_none());
    }

    #[test]
    fn backlog_per_flow() {
        let mut f = Fifo::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        f.enqueue(t0, pf.make(FlowId(1), Bytes::new(10), t0));
        f.enqueue(t0, pf.make(FlowId(1), Bytes::new(10), t0));
        assert_eq!(f.backlog(FlowId(1)), 2);
        assert_eq!(f.backlog(FlowId(9)), 0);
        assert_eq!(f.len(), 2);
    }
}
