//! First-in-first-out — the null discipline, used as a sanity baseline
//! in benches and tests.

use sfq_core::obs::{FlowChange, NoopObserver, SchedEvent, SchedObserver};
use sfq_core::{FlowId, Packet, Scheduler};
use simtime::{Rate, Ratio, SimTime};
use std::collections::{HashMap, VecDeque};

/// Single shared FIFO queue across all flows.
///
/// Generic over an observer (see [`sfq_core::obs`]); FIFO computes no
/// virtual-time tags, so events carry zero `start_tag`/`finish_tag`/`v`.
#[derive(Debug)]
pub struct Fifo<O: SchedObserver = NoopObserver> {
    queue: VecDeque<Packet>,
    backlog: HashMap<FlowId, usize>,
    obs: O,
}

impl Fifo {
    /// New empty FIFO.
    pub fn new() -> Self {
        Self::with_observer(NoopObserver)
    }
}

impl<O: SchedObserver> Fifo<O> {
    /// New empty FIFO reporting events to `obs`.
    pub fn with_observer(obs: O) -> Self {
        Fifo {
            queue: VecDeque::new(),
            backlog: HashMap::new(),
            obs,
        }
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consume the scheduler, returning the observer.
    pub fn into_observer(self) -> O {
        self.obs
    }
}

impl Default for Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: SchedObserver> Scheduler for Fifo<O> {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        self.backlog.entry(flow).or_insert(0);
        self.obs.on_flow_change(flow, &FlowChange::Added { weight });
    }

    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        *self.backlog.entry(pkt.flow).or_insert(0) += 1;
        self.queue.push_back(pkt);
        self.obs.on_enqueue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: Ratio::ZERO,
            finish_tag: Ratio::ZERO,
            v: Ratio::ZERO,
        });
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        if let Some(n) = self.backlog.get_mut(&pkt.flow) {
            *n -= 1;
        }
        self.obs.on_dequeue(&SchedEvent {
            time: now,
            flow: pkt.flow,
            uid: pkt.uid,
            len: pkt.len,
            start_tag: Ratio::ZERO,
            finish_tag: Ratio::ZERO,
            v: Ratio::ZERO,
        });
        Some(pkt)
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn backlog(&self, flow: FlowId) -> usize {
        self.backlog.get(&flow).copied().unwrap_or(0)
    }

    fn remove_flow(&mut self, flow: FlowId) -> bool {
        match self.backlog.get(&flow) {
            Some(0) => {
                self.backlog.remove(&flow);
                self.obs.on_flow_change(flow, &FlowChange::Removed);
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    #[test]
    fn serves_in_arrival_order() {
        let mut f = Fifo::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let a = pf.make(FlowId(1), Bytes::new(10), t0);
        let b = pf.make(FlowId(2), Bytes::new(10), t0);
        f.enqueue(t0, a);
        f.enqueue(t0, b);
        assert_eq!(f.dequeue(t0).unwrap().uid, a.uid);
        assert_eq!(f.dequeue(t0).unwrap().uid, b.uid);
        assert!(f.dequeue(t0).is_none());
    }

    #[test]
    fn backlog_per_flow() {
        let mut f = Fifo::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        f.enqueue(t0, pf.make(FlowId(1), Bytes::new(10), t0));
        f.enqueue(t0, pf.make(FlowId(1), Bytes::new(10), t0));
        assert_eq!(f.backlog(FlowId(1)), 2);
        assert_eq!(f.backlog(FlowId(9)), 0);
        assert_eq!(f.len(), 2);
    }
}
