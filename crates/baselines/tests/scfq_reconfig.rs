//! Live weight reconfiguration on exact-rational SCFQ: the same
//! tag-rewrite rule as `sfq_core::Sfq::try_set_weight` (head keeps its
//! tags, the tail re-chains at the new rate), checked at the
//! exact-span level. See `crates/sfq-core/tests/reconfig.rs` for the
//! SFQ-family suite and the note on why SCFQ's no-op fixed point only
//! holds while `v` (a *finish*-tag virtual time) has not overtaken the
//! chain — as in the all-arrivals-first schedules used here.

use baselines::Scfq;
use sfq_core::{FlowId, PacketFactory, SchedError, Scheduler};
use simtime::{Bytes, Rate, SimTime};

const T0: SimTime = SimTime::ZERO;

#[test]
fn head_keeps_tags_and_tail_rechains_exact() {
    let mut s = Scfq::new();
    let f = FlowId(7);
    let (old_w, new_w) = (Rate::bps(8_000), Rate::bps(32_000));
    s.add_flow(f, old_w);
    s.add_flow(FlowId(9), Rate::bps(16_000));
    let mut pf = PacketFactory::new();
    let lens = [400u64, 900, 300, 1200, 700];
    let mut uids = Vec::new();
    for &l in &lens {
        let p = pf.make(f, Bytes::new(l), T0);
        uids.push(p.uid);
        s.enqueue(T0, p);
    }
    for _ in 0..3 {
        s.enqueue(T0, pf.make(FlowId(9), Bytes::new(600), T0));
    }
    let head_before = s.tags_of(uids[0]).unwrap();
    s.try_set_weight(f, new_w).unwrap();
    let mut prev_finish = None;
    for (j, (&u, &l)) in uids.iter().zip(&lens).enumerate() {
        let (start, finish) = s.tags_of(u).unwrap();
        if j == 0 {
            assert_eq!((start, finish), head_before, "head tags must survive");
            assert_eq!(finish - start, old_w.tag_span(Bytes::new(l)));
        } else {
            assert_eq!(Some(start), prev_finish, "S_j must equal F_(j-1)");
            assert_eq!(finish - start, new_w.tag_span(Bytes::new(l)));
        }
        prev_finish = Some(finish);
    }
    // Per-flow FIFO order survives.
    let mut served = Vec::new();
    while let Some(p) = s.dequeue(T0) {
        served.push(p);
        s.on_departure(T0);
    }
    let flow_uids: Vec<u64> = served
        .iter()
        .filter(|p| p.flow == f)
        .map(|p| p.uid)
        .collect();
    assert_eq!(flow_uids, uids);
}

#[test]
fn noop_rewrite_is_bit_invisible() {
    let run = |noop: bool| {
        let mut s = Scfq::new();
        s.add_flow(FlowId(1), Rate::bps(12_000));
        s.add_flow(FlowId(2), Rate::bps(20_000));
        let mut pf = PacketFactory::new();
        let mut queued = Vec::new();
        for i in 0..8u64 {
            let f = FlowId(1 + (i % 2) as u32);
            let p = pf.make(f, Bytes::new(200 + 173 * i), T0);
            queued.push(p.uid);
            s.enqueue(T0, p);
        }
        if noop {
            s.try_set_weight(FlowId(1), Rate::bps(12_000)).unwrap();
            s.try_set_weight(FlowId(2), Rate::bps(20_000)).unwrap();
        }
        let tags: Vec<_> = queued.iter().map(|&u| s.tags_of(u).unwrap()).collect();
        let mut order = Vec::new();
        while let Some(p) = s.dequeue(T0) {
            order.push(p.uid);
            s.on_departure(T0);
        }
        (tags, order)
    };
    assert_eq!(run(false), run(true), "no-op rewrite was visible");
}

#[test]
fn errors_leave_tags_untouched() {
    let mut s = Scfq::new();
    let f = FlowId(3);
    s.add_flow(f, Rate::bps(10_000));
    let mut pf = PacketFactory::new();
    let mut uids = Vec::new();
    for _ in 0..4 {
        let p = pf.make(f, Bytes::new(500), T0);
        uids.push(p.uid);
        s.enqueue(T0, p);
    }
    let before: Vec<_> = uids.iter().map(|&u| s.tags_of(u).unwrap()).collect();
    assert_eq!(
        s.try_set_weight(f, Rate::bps(0)),
        Err(SchedError::ZeroWeight(f))
    );
    assert_eq!(
        s.try_set_weight(FlowId(99), Rate::bps(5_000)),
        Err(SchedError::UnknownFlow(FlowId(99)))
    );
    let after: Vec<_> = uids.iter().map(|&u| s.tags_of(u).unwrap()).collect();
    assert_eq!(after, before);
}
