//! Deterministic event queue.
//!
//! A classic discrete-event core: events carry an exact timestamp, the
//! queue pops them in time order, and simultaneous events are delivered
//! in the order they were scheduled (monotone sequence numbers) so runs
//! are bit-for-bit reproducible.

use simtime::{SimDuration, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A time-ordered queue of events of type `E` with a simulation clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// New queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute time `t`. Panics if `t` is in the
    /// past — a causality violation, always a bug in the model.
    pub fn schedule(&mut self, t: SimTime, event: E) {
        assert!(t >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: t,
            seq,
            event,
        }));
    }

    /// Schedule `event` after a non-negative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        assert!(!delay.is_negative(), "negative event delay");
        let t = self.now + delay;
        self.schedule(t, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.time;
        self.processed += 1;
        Some((e.time, e.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn simultaneous_events_fifo_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        let _ = q.pop();
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        let _ = q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Against a reference model: popping everything yields events
        /// sorted by (time, insertion order).
        #[test]
        fn pops_match_reference_sort(times in prop::collection::vec(0i128..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut reference: Vec<(i128, usize)> =
                times.iter().copied().zip(0..times.len()).collect();
            reference.sort();
            let popped: Vec<(i128, usize)> = std::iter::from_fn(|| {
                q.pop().map(|(t, id)| ((t.as_secs_f64() * 1000.0).round() as i128, id))
            })
            .collect();
            prop_assert_eq!(popped, reference);
        }

        /// Interleaved schedule/pop: the clock never goes backwards and
        /// every event is delivered exactly once.
        #[test]
        fn interleaved_ops_keep_clock_monotone(
            ops in prop::collection::vec(prop::option::of(0i128..1_000), 1..200)
        ) {
            let mut q = EventQueue::new();
            let mut scheduled = 0usize;
            let mut popped = 0usize;
            let mut last = SimTime::ZERO;
            for op in ops {
                match op {
                    Some(dt) => {
                        // Schedule relative to now (always legal).
                        q.schedule_in(SimDuration::from_millis(dt), scheduled);
                        scheduled += 1;
                    }
                    None => {
                        if let Some((t, _)) = q.pop() {
                            prop_assert!(t >= last);
                            last = t;
                            popped += 1;
                        }
                    }
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, scheduled);
            prop_assert_eq!(q.processed(), scheduled as u64);
        }
    }
}
