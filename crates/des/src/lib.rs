//! # des — deterministic discrete-event simulation engine
//!
//! The substrate every experiment runs on:
//!
//! - [`EventQueue`]: exact-time event queue with deterministic
//!   tie-breaking (schedule order) and a causality check,
//! - [`SimRng`]: seeded randomness whose durations are quantized to
//!   nanoseconds so they stay exact rationals downstream.
//!
//! The engine is intentionally synchronous and single-threaded: the
//! paper's results are statements about exact schedules, and an async
//! runtime or thread pool would only add nondeterminism (cf. the Tokio
//! guide's own advice on when not to use an async runtime).

#![warn(missing_docs)]

mod queue;
mod rng;

pub use queue::EventQueue;
pub use rng::SimRng;
