//! Seeded, quantizing randomness for simulations.
//!
//! All stochastic inputs (Poisson arrivals, EBF rate fluctuation, VBR
//! scene changes) flow through `SimRng`. Random durations are quantized
//! to whole nanoseconds so they enter the exact-rational event queue as
//! finite fractions — randomness never contaminates the exactness of
//! the scheduler arithmetic downstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::SimDuration;

/// Deterministic simulation RNG (seeded ChaCha-based `StdRng`).
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// New RNG from a seed. Every experiment binary prints its seed so
    /// any run can be reproduced.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this RNG was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream (e.g. one per traffic source)
    /// so adding a source never perturbs the draws of another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label into a fresh seed drawn from this stream.
        let base: u64 = self.rng.gen();
        SimRng::new(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range");
        self.rng.gen_range(lo..hi)
    }

    /// Exponentially distributed duration with the given mean,
    /// quantized to nanoseconds (minimum 1 ns so interarrivals are
    /// strictly positive).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let mean_s = mean.as_secs_f64();
        assert!(mean_s > 0.0, "exponential mean must be positive");
        let u: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let secs = -mean_s * u.ln();
        let ns = (secs * 1e9).round().max(1.0) as i128;
        SimDuration::from_nanos(ns)
    }

    /// Standard-normal draw (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal draw with location `mu` and scale `sigma` (of the
    /// underlying normal).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_count() {
        // Draw from fork(1) — the draws must not change if we created
        // the fork the same way in a fresh parent.
        let mut p1 = SimRng::new(7);
        let mut f1 = p1.fork(1);
        let x: Vec<u64> = (0..8).map(|_| f1.uniform_range(0, 1000)).collect();
        let mut p2 = SimRng::new(7);
        let mut f2 = p2.fork(1);
        let y: Vec<u64> = (0..8).map(|_| f2.uniform_range(0, 1000)).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn exp_duration_positive_and_mean_plausible() {
        let mut r = SimRng::new(11);
        let mean = SimDuration::from_millis(10);
        let n = 20_000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            let d = r.exp_duration(mean);
            assert!(d > SimDuration::ZERO);
            total += d;
        }
        let avg = total.as_secs_f64() / n as f64;
        assert!((avg - 0.010).abs() < 0.0005, "avg={avg}");
    }

    #[test]
    fn normal_moments_plausible() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.08, "var={var}");
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn empty_range_panics() {
        let mut r = SimRng::new(1);
        let _ = r.uniform_range(5, 5);
    }
}
