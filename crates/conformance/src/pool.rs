//! Pooled-backend conformance: the zero-allocation data path proven
//! against its owned oracle, packaged as a seeded scenario check.
//!
//! A [`Preset::Pool`](crate::scenario::Preset::Pool) scenario drives
//! churn-heavy traffic (flow removals and revivals mid-run) through the
//! default slab-pooled `FlowFifos` backend and the `HashMap`/`VecDeque`
//! owned backend on identical arrivals and server profiles. Unlike the
//! fixed-point differential, no quantization caveat applies: the pooled
//! backend changes *storage*, not *arithmetic*, so the two sides must
//! produce bit-identical departure schedules unconditionally — for the
//! exact rational schedulers and the u64 fast paths alike. Any
//! divergence (packet identity, service start, departure instant) is a
//! bug in the slab pool, the intrusive links, or the generation-checked
//! flow table. A failure message carries the first divergence's
//! minimized observer trace plus the
//! `conformance replay: preset=pool seed=N` line.
//!
//! Flow GC is deliberately left off on both sides here: the server
//! harness does not re-register flows before every enqueue, and lazy
//! reclamation is only identity-preserving under that discipline (see
//! `docs/pooling.md`). GC transparency has its own differential suite
//! in `tests/pool_identity.rs`.

use crate::diff::{diff_schedulers, SchedKind};
use crate::scenario::Scenario;

/// Successful pooled-vs-owned differential run.
#[derive(Debug)]
pub struct PoolOutcome {
    /// Departures compared across all four scheduler pairs.
    pub compared: usize,
}

/// Replay `sc` through every scheduler on both `FlowFifos` backends
/// (pooled default vs owned oracle); `Err` carries the rendered first
/// divergence (replay line included) of whichever pair disagrees first.
pub fn run_pool_conformance(sc: &Scenario) -> Result<PoolOutcome, String> {
    let mut compared = 0;
    for (pooled, owned) in [
        (SchedKind::Sfq, SchedKind::SfqOwned),
        (SchedKind::Scfq, SchedKind::ScfqOwned),
        (SchedKind::SfqFast, SchedKind::SfqFastOwned),
        (SchedKind::ScfqFast, SchedKind::ScfqFastOwned),
    ] {
        let rep = diff_schedulers(sc, owned, pooled);
        if let Some(d) = rep.divergence {
            return Err(format!(
                "pooled {} diverged from owned-backend {}:\n{}",
                pooled.name(),
                owned.name(),
                d.detail
            ));
        }
        compared += rep.compared;
    }
    Ok(PoolOutcome { compared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn pool_preset_churns_by_construction() {
        for seed in 0..32u64 {
            let sc = Scenario::from_seed(Preset::Pool, seed);
            assert_eq!(sc.hops, 1, "seed {seed}");
            assert!(!sc.churns.is_empty(), "seed {seed}: no churn events");
            assert!(sc.flows.len() >= 4, "seed {seed}: {} flows", sc.flows.len());
            for c in &sc.churns {
                assert!(
                    sc.flows.iter().any(|f| f.id == c.flow),
                    "seed {seed}: churn targets unknown flow {:?}",
                    c.flow
                );
            }
        }
    }

    #[test]
    fn pooled_matches_owned_on_seeded_scenarios() {
        for seed in [1u64, 7, 42] {
            let sc = Scenario::from_seed(Preset::Pool, seed);
            let out = run_pool_conformance(&sc).unwrap_or_else(|d| panic!("seed {seed}:\n{d}"));
            assert!(out.compared > 0, "seed {seed} produced no departures");
        }
    }
}
