//! Single-server execution with timed fault injection.
//!
//! [`run_faulted`] is `servers::run_server` plus a third event stream:
//! a sorted schedule of [`TimedFault`]s. A `ForceRemove` discards the
//! flow's backlog mid-run (the scheduler's churn hook); until a
//! matching `Revive`, further arrivals of that flow are refused at the
//! door — exactly what a real switch does after tearing down a
//! reservation. Event order at one instant: completion, faults,
//! arrivals, service start — so a packet arriving at the removal
//! instant is already refused, matching `netsim::Tandem`.

use crate::scenario::{Scenario, SourceKind};
use servers::{Departure, RateProfile};
use sfq_core::{FlowId, Packet, PacketFactory, SchedError, Scheduler};
use simtime::{Rate, SimTime};
use std::collections::HashSet;
use traffic::{merge, to_packets};

/// What a timed fault does.
#[derive(Clone, Copy, Debug)]
pub enum FaultAction {
    /// Force-remove the flow, discarding its backlog.
    ForceRemove(FlowId),
    /// Re-register the flow at the given weight; subsequent arrivals
    /// are accepted again (with fresh tag state, like a new flow).
    Revive(FlowId, Rate),
}

/// A fault at a point in time.
#[derive(Clone, Copy, Debug)]
pub struct TimedFault {
    /// When the fault fires.
    pub at: SimTime,
    /// What it does.
    pub action: FaultAction,
}

/// Outcome of a faulted run.
#[derive(Debug)]
pub struct ExecReport {
    /// Departure schedule of every packet served by the horizon.
    pub departures: Vec<Departure>,
    /// Backlogged packets discarded by force-removals.
    pub discarded: u64,
    /// Arrivals refused because their flow was removed at the time.
    pub refused: u64,
}

/// Run `sched` over `profile` with `arrivals` (sorted by time) and the
/// fault schedule (sorted by time). Mirrors `servers::run_server` when
/// `faults` is empty.
///
/// Panics if the scheduler reports an error (unregistered flow, tag
/// overflow); [`run_faulted_checked`] is the fallible form.
pub fn run_faulted(
    sched: &mut dyn Scheduler,
    profile: &RateProfile,
    arrivals: &[Packet],
    faults: &[TimedFault],
    horizon: SimTime,
) -> ExecReport {
    run_faulted_checked(sched, profile, arrivals, faults, horizon, "")
        .unwrap_or_else(|e| panic!("{}: {e}", sched.name()))
}

/// Fallible [`run_faulted`]: a scheduler control-plane error
/// ([`SchedError::UnknownFlow`], [`SchedError::TagOverflow`], ...)
/// aborts the run and is returned instead of panicking. When `replay`
/// is non-empty (pass [`Scenario::replay_line`]), the error and the
/// replay line are printed to stderr first, so a failure deep inside a
/// fuzz run reproduces from the log alone.
pub fn run_faulted_checked(
    sched: &mut dyn Scheduler,
    profile: &RateProfile,
    arrivals: &[Packet],
    faults: &[TimedFault],
    horizon: SimTime,
    replay: &str,
) -> Result<ExecReport, SchedError> {
    run_faulted_inner(sched, profile, arrivals, faults, horizon).inspect_err(|e| {
        if !replay.is_empty() {
            eprintln!("scheduler error ({e})\n  {replay}");
        }
    })
}

fn run_faulted_inner(
    sched: &mut dyn Scheduler,
    profile: &RateProfile,
    arrivals: &[Packet],
    faults: &[TimedFault],
    horizon: SimTime,
) -> Result<ExecReport, SchedError> {
    for w in arrivals.windows(2) {
        debug_assert!(w[0].arrival <= w[1].arrival, "arrivals must be sorted");
    }
    for w in faults.windows(2) {
        debug_assert!(w[0].at <= w[1].at, "faults must be sorted");
    }
    let mut departures = Vec::with_capacity(arrivals.len());
    let mut next_arrival = 0usize;
    let mut next_fault = 0usize;
    let mut removed: HashSet<FlowId> = HashSet::new();
    let mut discarded = 0u64;
    let mut refused = 0u64;
    let mut in_flight: Option<(SimTime, SimTime, Packet)> = None;

    loop {
        let arr_t = arrivals.get(next_arrival).map(|p| p.arrival);
        let fault_t = faults.get(next_fault).map(|f| f.at);
        let dep_t = in_flight.as_ref().map(|&(_, d, _)| d);
        let next_t = [arr_t, fault_t, dep_t].into_iter().flatten().min();
        let now = match next_t {
            Some(t) if t <= horizon => t,
            _ => break,
        };
        if dep_t == Some(now) {
            let (s, d, pkt) = in_flight.take().expect("in flight");
            sched.on_departure(now);
            departures.push(Departure {
                pkt,
                service_start: s,
                departure: d,
            });
        }
        while next_fault < faults.len() && faults[next_fault].at == now {
            match faults[next_fault].action {
                FaultAction::ForceRemove(flow) => {
                    discarded += sched.force_remove_flow(flow) as u64;
                    removed.insert(flow);
                }
                FaultAction::Revive(flow, weight) => {
                    sched.add_flow(flow, weight);
                    removed.remove(&flow);
                }
            }
            next_fault += 1;
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival == now {
            let pkt = arrivals[next_arrival];
            next_arrival += 1;
            if removed.contains(&pkt.flow) {
                refused += 1;
            } else {
                sched.try_enqueue(now, pkt)?;
            }
        }
        if in_flight.is_none() {
            if let Some(pkt) = sched.try_dequeue(now)? {
                let dep = profile.finish_time(now, pkt.len);
                in_flight = Some((now, dep, pkt));
            }
        }
    }
    Ok(ExecReport {
        departures,
        discarded,
        refused,
    })
}

/// Materialize a single-server scenario's merged packet script.
/// Deterministic; the same `PacketFactory` minting order on every call.
pub fn materialize_packets(sc: &Scenario) -> Vec<Packet> {
    let mut pf = PacketFactory::new();
    let mut lists = Vec::new();
    for f in &sc.flows {
        let arrivals = sc.arrivals_for(f);
        lists.push(to_packets(&mut pf, FlowId(f.id), &arrivals));
    }
    merge(lists)
}

/// Translate a scenario's churn schedule into timed faults, sorted.
pub fn faults_from(sc: &Scenario) -> Vec<TimedFault> {
    let mut out = Vec::new();
    for c in &sc.churns {
        out.push(TimedFault {
            at: SimTime::from_millis(c.at_ms as i128),
            action: FaultAction::ForceRemove(FlowId(c.flow)),
        });
        if let Some(rv) = c.revive_ms {
            let weight = sc
                .flow(FlowId(c.flow))
                .map(|f| f.weight())
                .expect("churned flow has a spec");
            out.push(TimedFault {
                at: SimTime::from_millis(rv as i128),
                action: FaultAction::Revive(FlowId(c.flow), weight),
            });
        }
    }
    out.sort_by_key(|f| f.at);
    out
}

/// Register every flow of a single-server scenario on a scheduler.
pub fn register_flows(sc: &Scenario, sched: &mut dyn Scheduler) {
    for f in &sc.flows {
        sched.add_flow(FlowId(f.id), f.weight());
    }
}

/// True if this scenario's arrival script is burst-structured (the
/// Fair Airport workload); used by reports.
pub fn is_burst_scenario(sc: &Scenario) -> bool {
    sc.flows
        .iter()
        .any(|f| matches!(f.source, SourceKind::Bursts(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Preset, Scenario};
    use servers::run_server;
    use sfq_core::Sfq;

    #[test]
    fn no_faults_matches_run_server_exactly() {
        let sc = Scenario::from_seed(Preset::SingleFc, 21);
        let profile = crate::faults::hop_profile(&sc, 0, sc.horizon());
        let arrivals = materialize_packets(&sc);

        let mut a = Sfq::new();
        register_flows(&sc, &mut a);
        let plain = run_server(&mut a, &profile, &arrivals, sc.horizon());

        let mut b = Sfq::new();
        register_flows(&sc, &mut b);
        let faulted = run_faulted(&mut b, &profile, &arrivals, &[], sc.horizon());

        assert_eq!(plain, faulted.departures);
        assert_eq!(faulted.discarded, 0);
        assert_eq!(faulted.refused, 0);
    }

    #[test]
    fn checked_run_surfaces_scheduler_errors() {
        use simtime::Bytes;
        let sc = Scenario::from_seed(Preset::SingleFc, 33);
        let profile = crate::faults::hop_profile(&sc, 0, sc.horizon());
        // Register every flow but the first: its first arrival must
        // surface as UnknownFlow instead of a panic, replay line and
        // all (the same path a hostile/missing reservation takes).
        let mut sched = Sfq::new();
        for f in sc.flows.iter().skip(1) {
            sched.add_flow(FlowId(f.id), f.weight());
        }
        let arrivals = materialize_packets(&sc);
        let missing = FlowId(sc.flows[0].id);
        let err = run_faulted_checked(
            &mut sched,
            &profile,
            &arrivals,
            &[],
            sc.horizon(),
            &sc.replay_line(),
        )
        .expect_err("unregistered flow must fail the checked run");
        assert_eq!(err, SchedError::UnknownFlow(missing));

        // The panicking wrapper reports the same failure.
        let mut pf = PacketFactory::new();
        let one = vec![pf.make(FlowId(999), Bytes::new(100), SimTime::ZERO)];
        let mut bare = Sfq::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_faulted(&mut bare, &profile, &one, &[], SimTime::from_secs(1))
        }));
        assert!(caught.is_err(), "run_faulted must panic on UnknownFlow");
    }

    #[test]
    fn force_remove_discards_and_refuses_until_revive() {
        use simtime::Bytes;
        let mut pf = PacketFactory::new();
        let len = Bytes::new(125); // 1000 bits = 1 s at 1000 bps.
        let mut arrivals = Vec::new();
        // Flow 1 backlogs 5 packets at t=0; flow 2 keeps the server
        // honest. Removal at t=1.5s discards flow 1's backlog; an
        // arrival at t=2 is refused; revive at t=3 admits t=4 arrival.
        for _ in 0..5 {
            arrivals.push(pf.make(FlowId(1), len, SimTime::ZERO));
        }
        arrivals.push(pf.make(FlowId(2), len, SimTime::ZERO));
        arrivals.push(pf.make(FlowId(1), len, SimTime::from_secs(2)));
        arrivals.push(pf.make(FlowId(1), len, SimTime::from_secs(4)));
        arrivals.sort_by_key(|p| (p.arrival, p.uid));

        let mut sched = Sfq::new();
        sched.add_flow(FlowId(1), Rate::bps(500));
        sched.add_flow(FlowId(2), Rate::bps(500));
        let faults = vec![
            TimedFault {
                at: SimTime::from_millis(1_500),
                action: FaultAction::ForceRemove(FlowId(1)),
            },
            TimedFault {
                at: SimTime::from_secs(3),
                action: FaultAction::Revive(FlowId(1), Rate::bps(500)),
            },
        ];
        let profile = RateProfile::constant(Rate::bps(1_000));
        let rep = run_faulted(
            &mut sched,
            &profile,
            &arrivals,
            &faults,
            SimTime::from_secs(30),
        );
        assert_eq!(rep.refused, 1, "t=2 arrival refused");
        assert!(rep.discarded >= 3, "backlog discarded: {}", rep.discarded);
        // The post-revive packet is served.
        assert!(rep
            .departures
            .iter()
            .any(|d| d.pkt.flow == FlowId(1) && d.pkt.arrival == SimTime::from_secs(4)));
        // Nothing of flow 1 departs between the removal and the revive
        // beyond what was already in service at the removal instant.
        for d in &rep.departures {
            if d.pkt.flow == FlowId(1)
                && d.service_start > SimTime::from_millis(1_500)
                && d.service_start < SimTime::from_secs(3)
            {
                panic!("removed flow served mid-removal: {d:?}");
            }
        }
    }
}
