//! Time-budgeted conformance fuzzer.
//!
//! Walks seeds from a starting point, running each preset's strongest
//! check, until the budget expires or a failure is found. Every failing
//! scenario's replay line is printed and appended to the output file —
//! the artifact CI's nightly job uploads.
//!
//! ```text
//! conformance-fuzz [--budget-secs N] [--preset NAME] [--start-seed S] [--out PATH]
//! ```

use conformance::{
    check_against_bound, diff_schedulers, run_chaos_conformance, run_engine_conformance,
    run_fast_conformance, run_graph_conformance, run_pool_conformance, run_soak,
    run_tandem_conformance, run_telemetry_conformance, Preset, Scenario, SchedKind,
};
use simtime::SimDuration;
use std::io::Write;
use std::time::{Duration, Instant};

struct Opts {
    budget: Duration,
    preset: Option<Preset>,
    start_seed: u64,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        budget: Duration::from_secs(10),
        preset: None,
        start_seed: 1,
        out: "target/conformance-failures.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--budget-secs" => {
                opts.budget = Duration::from_secs(val("--budget-secs").parse().expect("budget"))
            }
            "--preset" => {
                let name = val("--preset");
                opts.preset = Some(
                    Preset::from_name(&name).unwrap_or_else(|| panic!("unknown preset {name}")),
                )
            }
            "--start-seed" => opts.start_seed = val("--start-seed").parse().expect("seed"),
            "--out" => opts.out = val("--out"),
            other => panic!("unknown argument {other}"),
        }
    }
    opts
}

/// Run the strongest check for one scenario; `Some(reason)` = failed.
fn check(sc: &Scenario) -> Option<String> {
    match sc.preset {
        Preset::Tandem => {
            let out = run_tandem_conformance(sc, false);
            if out.theorem6_violation > SimDuration::ZERO {
                return Some(format!(
                    "Theorem 6 violated by {:?} over {} hops",
                    out.theorem6_violation, out.hops
                ));
            }
            if out.corollary1_violation > SimDuration::ZERO {
                return Some(format!(
                    "Corollary 1 violated by {:?} (bound {:?})",
                    out.corollary1_violation, out.corollary1_bound
                ));
            }
            if out.completed == 0 {
                return Some("no observed packets completed".to_string());
            }
            None
        }
        Preset::SingleFc => {
            if let Some(b) = check_against_bound(sc, SchedKind::Sfq) {
                if b.violation > SimDuration::ZERO {
                    return Some(format!("Theorem 4 violated by {:?}", b.violation));
                }
            }
            // Observer neutrality via self-diff: SFQ against itself
            // must be bit-identical under the same fault schedule.
            let rep = diff_schedulers(sc, SchedKind::Sfq, SchedKind::Sfq);
            rep.divergence
                .map(|d| format!("self-diff diverged:\n{}", d.detail))
        }
        Preset::Soak => {
            let out = run_soak(sc);
            if out.recovery_spread > out.fairness_bound {
                return Some(format!(
                    "fairness did not recover after overload: spread {:?} > bound {:?}",
                    out.recovery_spread, out.fairness_bound
                ));
            }
            if sc.drop_policy == conformance::DropKind::Tail
                && out.overload_spread > out.fairness_bound
            {
                return Some(format!(
                    "Theorem 1 fairness violated under tail-drop overload: spread {:?} > bound {:?}",
                    out.overload_spread, out.fairness_bound
                ));
            }
            if out.shed == 0 || out.engages == 0 {
                return Some(format!(
                    "overload never engaged the buffer caps (shed={}, engages={})",
                    out.shed, out.engages
                ));
            }
            if out.releases != out.engages {
                return Some(format!(
                    "backpressure engage/release mismatch after drain: {} engages, {} releases",
                    out.engages, out.releases
                ));
            }
            if out.post_revive_completions == 0 {
                return Some("churned flow never completed a packet after revive".to_string());
            }
            None
        }
        Preset::Engine => {
            // Threaded sharded engine vs the single-threaded oracle:
            // every run is a fresh OS interleaving of the same expected
            // departure sequence.
            run_engine_conformance(sc).err()
        }
        Preset::Fast => {
            // Fixed-point fast path vs the exact-rational oracle on a
            // quantization-safe workload: must be bit-identical.
            run_fast_conformance(sc).err()
        }
        Preset::Pool => {
            // Slab-pooled FlowFifos backend vs the owned oracle under
            // flow churn: must be bit-identical, no caveats.
            run_pool_conformance(sc).err()
        }
        Preset::Graph => {
            // Multi-port forwarding graph: Theorem 6 on every path,
            // Corollary 1, per-port Theorem 1, sync-vs-threaded port
            // identity, and arena book balance — all in one runner.
            run_graph_conformance(sc).err().map(|e| {
                // The runner embeds the replay line; strip it so the
                // fuzzer's own suffix doesn't duplicate it.
                e.lines().next().unwrap_or(&e).to_string()
            })
        }
        Preset::Chaos => {
            // Live reconfiguration + shard kills: no-op bit-identity,
            // driver identity, conservation under recovery policies,
            // and fairness reconvergence — all in one runner.
            run_chaos_conformance(sc).err().map(|e| {
                // The runner embeds the replay line; strip it so the
                // fuzzer's own suffix doesn't duplicate it.
                e.lines().next().unwrap_or(&e).to_string()
            })
        }
        Preset::Telemetry => {
            // Counter pages vs the driver-side ledger: conservation as
            // read purely from the pages, seqlock retry termination
            // under live writers, driver page identity, and coherence
            // under kills — all in one runner.
            run_telemetry_conformance(sc).err().map(|e| {
                // The runner embeds the replay line; strip it so the
                // fuzzer's own suffix doesn't duplicate it.
                e.lines().next().unwrap_or(&e).to_string()
            })
        }
        Preset::SingleEbf | Preset::FairAirport => None, // covered by tier-1 tests
    }
}

fn main() {
    let opts = parse_args();
    let presets: Vec<Preset> = match opts.preset {
        Some(p) => vec![p],
        None => vec![
            Preset::Tandem,
            Preset::SingleFc,
            Preset::Soak,
            Preset::Engine,
            Preset::Fast,
            Preset::Pool,
            Preset::Chaos,
            Preset::Telemetry,
            Preset::Graph,
        ],
    };
    let started = Instant::now();
    let mut seed = opts.start_seed;
    let mut ran = 0u64;
    let mut failures: Vec<String> = Vec::new();

    while started.elapsed() < opts.budget {
        for &preset in &presets {
            let sc = Scenario::from_seed(preset, seed);
            if let Some(reason) = check(&sc) {
                let line = sc.replay_line();
                eprintln!("FAIL: {reason}\n  {line}");
                failures.push(line);
            }
            ran += 1;
        }
        seed += 1;
    }

    if !failures.is_empty() {
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut f = std::fs::File::create(&opts.out).expect("open failure file");
        for line in &failures {
            writeln!(f, "{line}").expect("write failure file");
        }
        eprintln!(
            "{} failing scenario(s) after {} runs; replay lines in {}",
            failures.len(),
            ran,
            opts.out
        );
        std::process::exit(1);
    }
    println!(
        "conformance-fuzz: {ran} scenario checks clean in {:.1}s (seeds {}..{})",
        started.elapsed().as_secs_f64(),
        opts.start_seed,
        seed
    );
}
