//! Fault materialization: turn a scenario's server spec and droop
//! schedule into per-hop [`RateProfile`]s, and recompute the effective
//! FC burstiness `δ` the analytical bounds must use once capacity has
//! been perturbed.
//!
//! The key soundness property: a capacity droop makes the server a
//! *worse* FC server but still an FC server, so every theorem stays
//! applicable with the enlarged `δ` measured exactly by
//! [`servers::max_interval_deficit_bits`] on the faulted profile.

use crate::scenario::{Scenario, ServerSpec};
use des::SimRng;
use servers::{ebf_catch_up, fc_on_off, max_interval_deficit_bits, FcParams, RateProfile};
use simtime::{SimDuration, SimTime};

/// Build hop `hop`'s rate profile: the base profile of the scenario's
/// server class (seeded per hop for EBF), with every droop targeting
/// this hop spliced in. `run_horizon` must cover the whole simulation
/// including drain time.
pub fn hop_profile(sc: &Scenario, hop: usize, run_horizon: SimTime) -> RateProfile {
    let link = sc.link();
    let base = match sc.server {
        ServerSpec::Constant => RateProfile::constant(link),
        ServerSpec::Fc { delta_bits } => fc_on_off(
            FcParams {
                rate: link,
                delta_bits,
            },
            run_horizon,
        ),
        ServerSpec::Ebf {
            slot_ms,
            mean_gap_ms,
        } => {
            let mut rng = SimRng::new(sc.seed).fork(0xEBF0 + hop as u64);
            ebf_catch_up(
                link,
                SimDuration::from_millis(slot_ms as i128),
                SimDuration::from_millis(mean_gap_ms as i128),
                run_horizon,
                &mut rng,
            )
        }
    };
    let mut profile = base;
    for d in sc.droops.iter().filter(|d| d.hop == hop) {
        let from = SimTime::from_millis(d.at_ms as i128);
        let until = SimTime::from_millis((d.at_ms + d.dur_ms) as i128);
        profile = profile.scaled_window(from, until, d.percent);
    }
    profile
}

/// Effective FC burstiness of a (possibly faulted) profile against the
/// scenario's nominal rate, in bits, rounded up to keep the resulting
/// delay bounds valid.
pub fn effective_delta_bits(sc: &Scenario, profile: &RateProfile, run_horizon: SimTime) -> u64 {
    let d = max_interval_deficit_bits(profile, sc.link(), run_horizon);
    let up = d.ceil();
    assert!(up >= 0, "deficit cannot be negative");
    up as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Droop, Preset};
    use simtime::Ratio;

    #[test]
    fn droop_enlarges_effective_delta() {
        let mut sc = Scenario::from_seed(Preset::SingleFc, 5);
        sc.server = ServerSpec::Constant;
        sc.droops = vec![];
        let run_horizon = sc.horizon();
        let clean = hop_profile(&sc, 0, run_horizon);
        assert_eq!(effective_delta_bits(&sc, &clean, run_horizon), 0);

        // A 1-second half-capacity droop on a constant server loses
        // exactly C/2 bits: the effective δ must be exactly that.
        sc.droops = vec![Droop {
            hop: 0,
            at_ms: 2_000,
            dur_ms: 1_000,
            percent: 50,
        }];
        let faulted = hop_profile(&sc, 0, run_horizon);
        assert_eq!(
            effective_delta_bits(&sc, &faulted, run_horizon),
            sc.link_bps / 2
        );
    }

    #[test]
    fn fc_profile_delta_matches_spec_without_faults() {
        let mut sc = Scenario::from_seed(Preset::SingleFc, 9);
        sc.server = ServerSpec::Fc { delta_bits: 5_000 };
        sc.droops = vec![];
        let run_horizon = sc.horizon();
        let p = hop_profile(&sc, 0, run_horizon);
        let d = max_interval_deficit_bits(&p, sc.link(), run_horizon);
        assert_eq!(d, Ratio::from_int(5_000));
    }

    #[test]
    fn ebf_profiles_differ_per_hop_but_not_per_call() {
        let mut sc = Scenario::from_seed(Preset::SingleEbf, 3);
        sc.hops = 2;
        let h = sc.horizon();
        let a0 = hop_profile(&sc, 0, h);
        let a0_again = hop_profile(&sc, 0, h);
        let a1 = hop_profile(&sc, 1, h);
        assert_eq!(a0.segments(), a0_again.segments());
        assert_ne!(a0.segments(), a1.segments());
    }
}
