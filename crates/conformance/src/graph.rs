//! Forwarding-graph conformance: the [`Preset::Graph`] runner.
//!
//! One scenario drives three proofs over the same `graph::GraphSpec`
//! chain (ports shared by multi-hop cross flows, policers in front of
//! a deterministic subset of them, droops, churn, caps):
//!
//! 1. **Theorems, live.** The oracle build (bare exact-rational `Sfq`
//!    ports with `sfq_obs::FlowMetrics` attached) must satisfy
//!    Theorem 6 along *every* flow's path — per-hop β recomputed with
//!    the droop-faulted effective δ, survivors embedded back into the
//!    injected script by the shared reverse-greedy rule
//!    ([`crate::e2e::embed_survivors`]) — plus Corollary 1 for the
//!    (σ, ρ)-shaped observed flow, and (under tail-drop, where
//!    delivered-service fairness is not sacrificed by evictions)
//!    Theorem 1 pairwise fairness at every port via the FlowMetrics
//!    watermarks.
//! 2. **Identity.** The same spec built on `EngineSync` ports vs
//!    `EngineThreaded` ports (config derived from the seed) must be
//!    departure- and refusal-identical: sink sequences, per-port
//!    refusal orders, drop/eviction books, policer and churn counts.
//!    The executor is fully ordered and both engine drivers share the
//!    count-bounded pending rule, so any divergence is a driver bug.
//! 3. **Books.** After every run the packet arena's disposition books
//!    balance exactly — no slot leaks however packets died mid-graph.
//!
//! Every failure message ends with the scenario's replay line.

use crate::e2e::embed_survivors;
use crate::faults::{effective_delta_bits, hop_profile};
use crate::scenario::{other_lmax_at, DropKind, Scenario, SourceKind, OBSERVED_FLOW};
use crate::soak::drop_policy_of;
use analysis::{e2e_delay_bound, max_e2e_violation, sfq_delay_term, sfq_fairness_bound};
use des::SimRng;
use graph::{Graph, GraphReport, GraphSpec, PortSpec, TokenBucket};
use sfq_core::{FlowId, Scheduler, Sfq, TieBreak};
use sfq_engine::EngineConfig;
use sfq_obs::FlowMetrics;
use simtime::{Bytes, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Domain separator for the engine config drawn for the identity leg,
/// so it never correlates with the scenario's own generation stream.
const GRAPH_CFG_DOMAIN: u64 = 0x6A4F_0C49;

/// Everything one graph conformance run produced.
#[derive(Debug)]
pub struct GraphOutcome {
    /// Replay line reproducing the run.
    pub replay: String,
    /// Ports in the chain.
    pub hops: usize,
    /// Observed packets injected.
    pub injected: usize,
    /// Observed packets delivered end to end.
    pub completed: usize,
    /// Flows whose path was checked against Theorem 6.
    pub checked_paths: usize,
    /// Worst Theorem 6 violation across all paths (zero = conforms).
    pub theorem6_violation: SimDuration,
    /// Corollary 1 violation for the observed flow (zero = conforms).
    pub corollary1_violation: SimDuration,
    /// Corollary 1 closed-form bound.
    pub corollary1_bound: SimDuration,
    /// Largest observed end-to-end delay of the observed flow.
    pub max_delay: SimDuration,
    /// Packets killed by ingress policers (oracle run).
    pub policer_dropped: u64,
    /// Packets shed at port buffers (oracle run, switch books).
    pub buffer_dropped: u64,
    /// Packets discarded or refused by churn (oracle run).
    pub churn_discarded: u64,
}

/// The per-flow injection node map: policed flows enter at their
/// policer, everything else at its entry port.
type InjectMap = BTreeMap<u32, usize>;

/// Build the scenario's chain spec plus the injection map. Cross flows
/// with even ids get a `(σ = 3·l^max, ρ = weight)` GCRA contract at a
/// policer in front of their entry port — generous enough that CBR
/// conforms, tight enough that Poisson bursts shed.
fn chain_spec(sc: &Scenario, run_horizon: SimTime) -> (GraphSpec, InjectMap) {
    let mut ports = Vec::with_capacity(sc.hops);
    for h in 0..sc.hops {
        let flows = sc
            .flows
            .iter()
            .filter(|f| f.entry <= h && h <= f.exit)
            .map(|f| (FlowId(f.id), f.weight()))
            .collect();
        let mut ps = PortSpec::new(hop_profile(sc, h, run_horizon), flows);
        ps.per_flow_cap = sc.per_flow_cap;
        ps.shared_cap = sc.shared_cap;
        ps.policy = drop_policy_of(sc.drop_policy);
        ports.push(ps);
    }
    let exits: Vec<(FlowId, usize)> = sc.flows.iter().map(|f| (FlowId(f.id), f.exit)).collect();
    let mut spec = GraphSpec::chain(ports, &exits, sc.prop());

    let mut inject: InjectMap = sc.flows.iter().map(|f| (f.id, f.entry)).collect();
    let mut by_entry: BTreeMap<usize, Vec<(FlowId, TokenBucket)>> = BTreeMap::new();
    for f in sc
        .flows
        .iter()
        .filter(|f| f.id != OBSERVED_FLOW.0 && f.id % 2 == 0)
    {
        by_entry.entry(f.entry).or_default().push((
            FlowId(f.id),
            TokenBucket {
                sigma: Bytes::new(3 * f.size.max_bytes()),
                rho: f.weight(),
            },
        ));
    }
    for (entry, rules) in by_entry {
        let node = spec.add_policer(entry, rules.clone());
        for (flow, _) in rules {
            inject.insert(flow.0, node);
        }
    }
    (spec, inject)
}

/// Materialize and run the spec once. Sources are added in flow-spec
/// order, so packet uids are identical across every build of the same
/// scenario — the property the identity comparison rides on.
fn run_once(
    sc: &Scenario,
    spec: &GraphSpec,
    inject: &InjectMap,
    mk: &mut dyn FnMut(usize) -> Box<dyn Scheduler>,
    run_horizon: SimTime,
) -> GraphReport {
    let mut g = spec.build_with(mk);
    for f in &sc.flows {
        let arrivals = sc.arrivals_for(f);
        g.add_source(inject[&f.id], FlowId(f.id), &arrivals);
    }
    for c in &sc.churns {
        let path = sc.flow(FlowId(c.flow)).expect("churned flow has a spec");
        for h in path.entry..=path.exit {
            g.schedule_churn(h, FlowId(c.flow), SimTime::from_millis(c.at_ms as i128));
        }
    }
    g.run(run_horizon)
}

/// Identity surface of one run: everything that must be bit-identical
/// between the sync-oracle and threaded builds.
#[derive(PartialEq, Eq, Debug)]
struct Identity {
    sink_departures: Vec<(usize, Vec<(u64, SimTime)>)>,
    port_refusals: Vec<(usize, Vec<u64>)>,
    port_drops: Vec<(usize, u64)>,
    evicted: u64,
    policer_dropped: u64,
    churn_discarded: u64,
    churn_refused: u64,
}

impl Identity {
    fn of(r: &GraphReport) -> Identity {
        Identity {
            sink_departures: r
                .sink_departures
                .iter()
                .map(|(n, d)| (*n, d.iter().map(|x| (x.uid, x.at)).collect()))
                .collect(),
            port_refusals: r.port_refusals.clone(),
            port_drops: r.port_drops.clone(),
            evicted: r.evicted,
            policer_dropped: r.policer_dropped,
            churn_discarded: r.churn_discarded,
            churn_refused: r.churn_refused,
        }
    }
}

/// Run the full graph conformance check for a [`Preset::Graph`]
/// scenario. `Err` carries a human-readable reason ending with the
/// replay line.
pub fn run_graph_conformance(sc: &Scenario) -> Result<GraphOutcome, String> {
    let replay = sc.replay_line();
    let fail = |msg: String| format!("{msg}\n  {replay}");
    let run_horizon = sc.horizon() + SimDuration::from_secs(10);
    let (spec, inject) = chain_spec(sc, run_horizon);

    // --- Oracle run: bare Sfq ports with live FlowMetrics. ---
    let mut metrics: Vec<Rc<RefCell<FlowMetrics>>> = Vec::new();
    let report = run_once(
        sc,
        &spec,
        &inject,
        &mut |_ordinal| {
            let m = Rc::new(RefCell::new(FlowMetrics::new()));
            metrics.push(Rc::clone(&m));
            Box::new(Sfq::with_observer(TieBreak::Fifo, m))
        },
        run_horizon,
    );
    assert_eq!(metrics.len(), sc.hops, "one metrics observer per port");

    if !report.audit.balanced() {
        return Err(fail(format!(
            "oracle run arena books unbalanced: {:?}",
            report.audit
        )));
    }
    if report.unrouted != 0 {
        return Err(fail(format!(
            "{} packets had no route in a fully-wired chain",
            report.unrouted
        )));
    }

    // Per-hop effective δ under the droop schedule, shared by every
    // flow's β terms.
    let deltas: Vec<u64> = (0..sc.hops)
        .map(|h| effective_delta_bits(sc, &hop_profile(sc, h, run_horizon), run_horizon))
        .collect();
    let link = sc.link();

    // --- Theorem 6 along every flow's path. ---
    let mut theorem6_violation = SimDuration::ZERO;
    let mut checked_paths = 0usize;
    let mut obs_done: Vec<(u64, SimTime, Bytes, SimTime)> = Vec::new();
    let mut obs_injected = 0usize;
    for f in &sc.flows {
        let full = sc.arrivals_for(f);
        // Delivered transits, by injection order. Departure = last-hop
        // transmission completion (the wire into the exit classifier
        // and sink is zero-delay).
        let mut done: Vec<(u64, SimTime, Bytes, SimTime)> = report
            .transits
            .iter()
            .filter(|t| t.pkt.flow == FlowId(f.id) && t.delivered.is_some())
            .map(|t| {
                let (_, dep) = *t.port_departures.last().expect("delivered => transmitted");
                (t.pkt.uid, t.pkt.arrival, t.pkt.len, dep)
            })
            .collect();
        done.sort_by_key(|&(uid, arr, _, _)| (arr, uid));
        let betas: Vec<SimDuration> = (f.entry..=f.exit)
            .map(|h| {
                sfq_delay_term(
                    &other_lmax_at(sc, h, FlowId(f.id)),
                    f.max_len(),
                    link,
                    deltas[h],
                )
            })
            .collect();
        let term = betas.iter().fold(SimDuration::ZERO, |acc, &b| acc + b)
            + SimDuration::from_millis((f.exit - f.entry) as i128 * sc.prop_ms as i128);
        let triples = embed_survivors(&full, &done);
        let v = max_e2e_violation(&triples, f.weight(), term);
        if v > theorem6_violation {
            theorem6_violation = v;
        }
        checked_paths += 1;
        if f.id == OBSERVED_FLOW.0 {
            obs_injected = full.len();
            obs_done = done;
        }
    }
    if theorem6_violation > SimDuration::ZERO {
        return Err(fail(format!(
            "Theorem 6 violated by {theorem6_violation:?} on a {}-hop graph path",
            sc.hops
        )));
    }

    // --- Corollary 1 for the shaped observed flow. ---
    let obs = sc.observed();
    let sigma_pkts = match obs.source {
        SourceKind::ShapedPoisson { sigma_pkts } => sigma_pkts as u64,
        _ => 1,
    };
    let obs_betas: Vec<SimDuration> = (0..sc.hops)
        .map(|h| {
            sfq_delay_term(
                &other_lmax_at(sc, h, OBSERVED_FLOW),
                obs.max_len(),
                link,
                deltas[h],
            )
        })
        .collect();
    let props = vec![sc.prop(); sc.hops.saturating_sub(1)];
    let corollary1_bound = e2e_delay_bound(
        sigma_pkts * obs.max_len().bits(),
        obs.weight(),
        obs.max_len(),
        &obs_betas,
        &props,
    );
    let mut max_delay = SimDuration::ZERO;
    let mut corollary1_violation = SimDuration::ZERO;
    for &(_, arr, _, dep) in &obs_done {
        let delay = dep - arr;
        max_delay = max_delay.max(delay);
        if delay > corollary1_bound {
            corollary1_violation = corollary1_violation.max(delay - corollary1_bound);
        }
    }
    if corollary1_violation > SimDuration::ZERO {
        return Err(fail(format!(
            "Corollary 1 violated by {corollary1_violation:?} (bound {corollary1_bound:?})"
        )));
    }
    if obs_done.is_empty() {
        return Err(fail("no observed packets delivered end to end".into()));
    }

    // --- Theorem 1 fairness at every port, via the live FlowMetrics
    // watermarks. Only under tail-drop: head-drop/LWP evictions keep
    // the evicted spans charged to their flows, intentionally
    // sacrificing delivered-service fairness (see docs/robustness.md).
    if sc.drop_policy == DropKind::Tail {
        for (h, m) in metrics.iter().enumerate() {
            let m = m.borrow();
            let at_hop: Vec<_> = sc
                .flows
                .iter()
                .filter(|f| f.entry <= h && h <= f.exit)
                .collect();
            for (i, f) in at_hop.iter().enumerate() {
                for g in &at_hop[i + 1..] {
                    let Some(spread) = m.worst_spread_between(FlowId(f.id), FlowId(g.id)) else {
                        continue;
                    };
                    let bound =
                        sfq_fairness_bound(f.max_len(), f.weight(), g.max_len(), g.weight());
                    if spread > bound {
                        return Err(fail(format!(
                            "Theorem 1 violated at port {h} between flows {} and {}: \
                             spread {spread:?} > bound {bound:?}",
                            f.id, g.id
                        )));
                    }
                }
            }
        }
    }

    // --- Identity: sync-engine build vs threaded build. ---
    let mut rng = SimRng::new(sc.seed).fork(GRAPH_CFG_DOMAIN);
    let shards = rng.uniform_range(2, 6) as usize;
    let ring = rng.uniform_range(12, 49) as usize;
    let cfg = EngineConfig::new(shards).ring_capacity(ring);
    let sync_rep = run_once(
        sc,
        &spec,
        &inject,
        &mut |_| Box::new(sfq_engine::SyncEngine::new(cfg)),
        run_horizon,
    );
    let thr_rep = run_once(
        sc,
        &spec,
        &inject,
        &mut |_| Box::new(sfq_engine::ThreadedEngine::new(cfg)),
        run_horizon,
    );
    if !sync_rep.audit.balanced() || !thr_rep.audit.balanced() {
        return Err(fail(format!(
            "engine-port arena books unbalanced: sync {:?} threaded {:?}",
            sync_rep.audit, thr_rep.audit
        )));
    }
    let a = Identity::of(&sync_rep);
    let b = Identity::of(&thr_rep);
    if a != b {
        let what = if a.sink_departures != b.sink_departures {
            "sink departure sequences"
        } else if a.port_refusals != b.port_refusals {
            "port refusal sequences"
        } else {
            "drop/eviction/churn books"
        };
        return Err(fail(format!(
            "threaded graph diverged from sync oracle in {what} \
             (shards={shards} ring={ring})"
        )));
    }

    let buffer_dropped: u64 = report.port_drops.iter().map(|&(_, n)| n).sum();
    Ok(GraphOutcome {
        replay,
        hops: sc.hops,
        injected: obs_injected,
        completed: obs_done.len(),
        checked_paths,
        theorem6_violation,
        corollary1_violation,
        corollary1_bound,
        max_delay,
        policer_dropped: report.policer_dropped,
        buffer_dropped,
        churn_discarded: report.churn_discarded + report.churn_refused,
    })
}

/// Build the scenario's spec and run it once on bare-Sfq ports,
/// returning the raw report — the hook `tests/graph_pool.rs` and the
/// nightly soak use for book-keeping checks without re-deriving the
/// topology.
pub fn run_graph_oracle(sc: &Scenario) -> GraphReport {
    let run_horizon = sc.horizon() + SimDuration::from_secs(10);
    let (spec, inject) = chain_spec(sc, run_horizon);
    run_once(
        sc,
        &spec,
        &inject,
        &mut |_| Box::new(Sfq::new()),
        run_horizon,
    )
}

// Keep the `Graph` name reachable for doc links without an unused
// import warning in the module body.
#[allow(unused)]
fn _doc_anchor(_: &Graph) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn graph_preset_passes_all_checks() {
        for seed in [1u64, 2, 3] {
            let sc = Scenario::from_seed(Preset::Graph, seed);
            let out = run_graph_conformance(&sc).unwrap_or_else(|e| panic!("{e}"));
            assert!(out.completed > 0);
            assert!(out.checked_paths >= 2, "observed + cross paths checked");
            assert_eq!(out.theorem6_violation, SimDuration::ZERO);
        }
    }

    #[test]
    fn policers_actually_shed_nonconforming_cross_traffic() {
        // Some seed in a small window must produce a policed Poisson
        // cross flow that exceeds its bucket.
        let shed: u64 = (0..12u64)
            .map(|s| run_graph_oracle(&Scenario::from_seed(Preset::Graph, s)).policer_dropped)
            .sum();
        assert!(shed > 0, "no policer ever dropped across 12 seeds");
    }
}
