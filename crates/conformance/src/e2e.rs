//! End-to-end conformance: Theorem 6 and Corollary 1 over a
//! `netsim::Tandem` of 2–5 FC servers, with the scenario's fault
//! schedule (capacity droop, cross-flow churn, per-flow buffer caps)
//! applied.
//!
//! Soundness under faults:
//!
//! - **Droop** makes a hop a worse-but-still FC server; the per-hop β
//!   is recomputed with the *exact* effective δ of the faulted profile,
//!   so the composed bound remains a theorem, not a heuristic.
//! - **Churn** only ever removes cross flows. Removing competing
//!   backlog can only advance the observed flow, and β (computed from
//!   the cross flows' `l^max`) stays an upper bound.
//! - **Buffer caps** drop packets. Dropped cross packets reduce load;
//!   dropped observed packets are simply excluded from the check, while
//!   the EAT chain is still computed over the *full* injected sequence
//!   — later than the survivors' own chain, hence conservative.

use crate::faults::{effective_delta_bits, hop_profile};
use crate::scenario::{other_lmax_at, Scenario, SourceKind, OBSERVED_FLOW};
use analysis::{e2e_delay_bound, max_e2e_violation, sfq_delay_term};
use netsim::{SwitchCore, Tandem};
use sfq_core::{FlowId, Scheduler, Sfq, TieBreak};
use sfq_obs::RingTracer;
use simtime::{Bytes, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything one tandem conformance run produced.
#[derive(Debug)]
pub struct E2eOutcome {
    /// Replay line reproducing the run.
    pub replay: String,
    /// Hops in the tandem.
    pub hops: usize,
    /// Observed packets injected at server 1.
    pub injected: usize,
    /// Observed packets that cleared every hop.
    pub completed: usize,
    /// Composed delay term `Σ_n β^n + Σ τ`.
    pub term: SimDuration,
    /// Worst Theorem 6 violation over completed observed packets
    /// (zero = conforms).
    pub theorem6_violation: SimDuration,
    /// Worst Corollary 1 violation (end-to-end delay vs the (σ, ρ)
    /// closed form; zero = conforms).
    pub corollary1_violation: SimDuration,
    /// Largest observed end-to-end delay.
    pub max_delay: SimDuration,
    /// Corollary 1 closed-form bound.
    pub corollary1_bound: SimDuration,
    /// Packets discarded by churn force-removals.
    pub churn_discarded: u64,
    /// In-flight packets refused at churned hops.
    pub churn_refused: u64,
    /// Packets dropped at buffer caps (all hops, all flows).
    pub buffer_dropped: u64,
    /// Per-hop departure fingerprint of the observed flow — `(uid,
    /// final-hop departure)` — for bit-identity comparisons.
    pub fingerprint: Vec<(u64, SimTime)>,
}

/// Run the full tandem conformance check for a [`Preset::Tandem`]
/// scenario (any scenario with FC/constant hops works).
///
/// `with_observers` attaches a ring tracer to every hop's scheduler
/// and a drop observer to every hop's port; the outcome must be
/// bit-identical either way (the observer-neutrality satellite checks
/// exactly that via [`E2eOutcome::fingerprint`]).
pub fn run_tandem_conformance(sc: &Scenario, with_observers: bool) -> E2eOutcome {
    assert!(
        !matches!(sc.server, crate::scenario::ServerSpec::Ebf { .. }),
        "Theorem 6 harness needs FC hops"
    );
    let link = sc.link();
    let obs = sc.observed().clone();
    let obs_len = obs.max_len();
    let run_horizon = sc.horizon() + SimDuration::from_secs(10);

    // Per-hop profiles, effective δ, and β terms.
    let mut betas = Vec::with_capacity(sc.hops);
    let mut hops = Vec::with_capacity(sc.hops);
    for h in 0..sc.hops {
        let profile = hop_profile(sc, h, run_horizon);
        let delta = effective_delta_bits(sc, &profile, run_horizon);
        let others = other_lmax_at(sc, h, OBSERVED_FLOW);
        betas.push(sfq_delay_term(&others, obs_len, link, delta));

        let mut sched: Box<dyn Scheduler> = if with_observers {
            let tracer = Rc::new(RefCell::new(RingTracer::with_capacity(512)));
            Box::new(Sfq::with_observer(TieBreak::Fifo, tracer))
        } else {
            Box::new(Sfq::new())
        };
        for f in sc.flows.iter().filter(|f| f.entry <= h && h <= f.exit) {
            sched.add_flow(FlowId(f.id), f.weight());
        }
        let mut core = SwitchCore::new(sched, profile, sc.per_flow_cap);
        core.set_shared_cap(sc.shared_cap);
        core.set_drop_policy(crate::soak::drop_policy_of(sc.drop_policy));
        if with_observers {
            core.set_drop_observer(Box::new(sfq_obs::CountingObserver::default()));
        }
        hops.push(core);
    }

    let mut tandem = Tandem::new(hops, sc.prop());
    let mut injected = 0usize;
    for f in &sc.flows {
        let arrivals = sc.arrivals_for(f);
        if f.id == OBSERVED_FLOW.0 {
            injected = arrivals.len();
        }
        tandem.add_path_source(FlowId(f.id), &arrivals, f.entry, f.exit);
    }
    for c in &sc.churns {
        let spec = sc.flow(FlowId(c.flow)).expect("churned flow has a spec");
        for h in spec.entry..=spec.exit {
            tandem.schedule_force_remove(h, FlowId(c.flow), SimTime::from_millis(c.at_ms as i128));
        }
    }
    let report = tandem.run_report(run_horizon);

    // Completed observed transits, by injection order.
    let mut done: Vec<(u64, SimTime, Bytes, SimTime)> = report
        .transits
        .iter()
        .filter(|t| t.pkt.flow == OBSERVED_FLOW)
        .map(|t| {
            (
                t.pkt.uid,
                t.pkt.arrival,
                t.pkt.len,
                *t.hop_departures.last().expect("cleared all hops"),
            )
        })
        .collect();
    done.sort_by_key(|&(uid, arr, _, _)| (arr, uid));
    let completed = done.len();

    // Theorem 6: EAT over the full injected sequence; survivors are
    // checked against their departure, non-survivors trivially pass.
    let full = sc.arrivals_for(&obs);
    let triples = embed_survivors(&full, &done);

    let term: SimDuration =
        betas.iter().fold(SimDuration::ZERO, |acc, &b| acc + b) + props_total(sc);
    let theorem6_violation = max_e2e_violation(&triples, obs.weight(), term);

    // Corollary 1 for the (σ, ρ)-shaped observed flow.
    let sigma_pkts = match obs.source {
        SourceKind::ShapedPoisson { sigma_pkts } => sigma_pkts as u64,
        _ => 1,
    };
    let props = vec![sc.prop(); sc.hops.saturating_sub(1)];
    let corollary1_bound = e2e_delay_bound(
        sigma_pkts * obs_len.bits(),
        obs.weight(),
        obs_len,
        &betas,
        &props,
    );
    let mut max_delay = SimDuration::ZERO;
    let mut corollary1_violation = SimDuration::ZERO;
    for &(_, arr, _, dep) in &done {
        let delay = dep - arr;
        max_delay = max_delay.max(delay);
        if delay > corollary1_bound {
            corollary1_violation = corollary1_violation.max(delay - corollary1_bound);
        }
    }

    let buffer_dropped: u64 = report
        .buffer_drops
        .iter()
        .flat_map(|hop| hop.iter().map(|&(_, n)| n))
        .sum();
    let fingerprint: Vec<(u64, SimTime)> =
        done.iter().map(|&(uid, _, _, dep)| (uid, dep)).collect();

    E2eOutcome {
        replay: sc.replay_line(),
        hops: sc.hops,
        injected,
        completed,
        term,
        theorem6_violation,
        corollary1_violation,
        max_delay,
        corollary1_bound,
        churn_discarded: report.churn_discarded,
        churn_refused: report.churn_refused,
        buffer_dropped,
        fingerprint,
    }
}

/// Embed a run's completed transits back into the full injected script,
/// producing the `(arrival, len, departure)` triples
/// [`analysis::max_e2e_violation`] consumes.
///
/// `done` must be the survivors sorted by `(arrival, uid)` — a
/// subsequence of the injected order, since drops only delete entries.
/// Non-survivors get `dep := arrival`, which trivially conforms
/// (`EAT >= arrival`, so `arrival <= EAT + term` always). Survivors are
/// matched from the *end*, so each takes the latest admissible slot:
/// among duplicate `(arrival, len)` entries with dropped siblings this
/// yields the largest EAT, keeping the check conservative rather than
/// strict. Panics if a survivor cannot be matched against the script.
pub fn embed_survivors(
    full: &[(SimTime, Bytes)],
    done: &[(u64, SimTime, Bytes, SimTime)],
) -> Vec<(SimTime, Bytes, SimTime)> {
    let mut triples: Vec<(SimTime, Bytes, SimTime)> =
        full.iter().map(|&(arr, len)| (arr, len, arr)).collect();
    let mut j = done.len();
    for i in (0..full.len()).rev() {
        if j == 0 {
            break;
        }
        let (arr, len) = full[i];
        let (_, a, l, dep) = done[j - 1];
        if a == arr && l == len {
            triples[i].2 = dep;
            j -= 1;
        }
    }
    // All survivors must have been matched against the injected script.
    assert_eq!(j, 0, "transit not present in injected script");
    triples
}

fn props_total(sc: &Scenario) -> SimDuration {
    let n = sc.hops.saturating_sub(1) as i128;
    SimDuration::from_millis(n * sc.prop_ms as i128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn clean_tandem_meets_both_bounds() {
        let mut sc = Scenario::from_seed(Preset::Tandem, 2);
        sc.droops.clear();
        sc.churns.clear();
        sc.per_flow_cap = None;
        let out = run_tandem_conformance(&sc, false);
        assert!(out.completed > 0, "no observed packets completed");
        assert_eq!(out.completed, out.injected);
        assert_eq!(
            out.theorem6_violation,
            SimDuration::ZERO,
            "Theorem 6 violated by {:?}\n  {}",
            out.theorem6_violation,
            out.replay
        );
        assert_eq!(
            out.corollary1_violation,
            SimDuration::ZERO,
            "Corollary 1 violated by {:?}\n  {}",
            out.corollary1_violation,
            out.replay
        );
        assert!(out.max_delay <= out.corollary1_bound);
    }

    #[test]
    fn faulted_tandem_still_meets_theorem6() {
        // Force a droop and a churn onto a known seed.
        let mut sc = Scenario::from_seed(Preset::Tandem, 4);
        sc.droops = vec![crate::scenario::Droop {
            hop: 0,
            at_ms: 2_000,
            dur_ms: 300,
            percent: 50,
        }];
        let victim = sc.flows[1].id;
        sc.churns = vec![crate::scenario::Churn {
            flow: victim,
            at_ms: 3_000,
            revive_ms: None,
        }];
        let out = run_tandem_conformance(&sc, false);
        assert!(out.completed > 0);
        assert!(out.churn_discarded + out.churn_refused > 0 || out.completed == out.injected);
        assert_eq!(
            out.theorem6_violation,
            SimDuration::ZERO,
            "Theorem 6 violated by {:?}\n  {}",
            out.theorem6_violation,
            out.replay
        );
    }

    #[test]
    fn observers_do_not_change_departures() {
        let sc = Scenario::from_seed(Preset::Tandem, 6);
        let plain = run_tandem_conformance(&sc, false);
        let traced = run_tandem_conformance(&sc, true);
        assert_eq!(plain.fingerprint, traced.fingerprint);
        assert_eq!(plain.churn_discarded, traced.churn_discarded);
        assert_eq!(plain.buffer_dropped, traced.buffer_dropped);
    }
}
