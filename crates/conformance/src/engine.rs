//! Differential conformance for the sharded engine: replay one seeded
//! API call schedule against `sfq_engine::SyncEngine` (single-threaded
//! deterministic oracle) and `sfq_engine::ThreadedEngine` (one worker
//! thread per shard) and require bit-identical behaviour.
//!
//! The [`Preset::Engine`] scenario fixes the flow population; this
//! module derives everything *operational* — shard count, batch size,
//! ring capacity, and the interleaving of ingest / pump / drain calls —
//! from the same seed under a separate domain separator, so one replay
//! line reproduces both the workload and the exact call schedule. The
//! threaded engine's claim (see its module docs) is that departures and
//! backpressure refusals are a pure function of that call schedule, no
//! matter how the OS schedules the shard workers; every run here is
//! therefore a fresh adversarial interleaving of the same expected
//! output.

use crate::scenario::Scenario;
use des::SimRng;
use sfq_core::{FlowId, Packet, PacketFactory};
use sfq_engine::{EngineConfig, SyncEngine, ThreadedEngine};
use simtime::{Bytes, SimTime};

/// Domain separator for the operational schedule, so it never reuses
/// the scenario-generation or arrival streams of the same seed.
const OP_DOMAIN: u64 = 0xE191_4E00;

/// Statistics of a passing engine-differential run.
#[derive(Clone, Copy, Debug)]
pub struct EngineOutcome {
    /// Shards each engine ran.
    pub shards: usize,
    /// Drain batch size.
    pub batch: usize,
    /// Per-shard ring capacity.
    pub ring_capacity: usize,
    /// Packets offered to each engine.
    pub offered: usize,
    /// Packets that departed (identically) from both engines.
    pub departures: usize,
    /// Ingest refusals (identical in both engines).
    pub refusals: usize,
}

/// Replay the scenario's derived call schedule against both engine
/// drivers. `Ok` carries run statistics; `Err` is a human-readable
/// divergence report ending in the scenario's replay line.
pub fn run_engine_conformance(sc: &Scenario) -> Result<EngineOutcome, String> {
    let mut rng = SimRng::new(sc.seed ^ OP_DOMAIN);
    let shards = rng.uniform_range(2, 6) as usize;
    let batch = rng.uniform_range(1, 33) as usize;
    let ring_capacity = 1usize << rng.uniform_range(5, 10); // 32..=512
    let cfg = EngineConfig::new(shards)
        .batch(batch)
        .ring_capacity(ring_capacity);
    let mut sync = SyncEngine::new(cfg);
    let mut thr = ThreadedEngine::new(cfg);

    let fail = |msg: String| -> String { format!("{msg}\n  {}", sc.replay_line()) };

    // Register every flow up front on both engines.
    for f in &sc.flows {
        let id = FlowId(f.id);
        let w = f.weight();
        if let Err(e) = sync.try_add_flow(id, w) {
            return Err(fail(format!("oracle refused flow {id}: {e}")));
        }
        if let Err(e) = thr.try_add_flow(id, w) {
            return Err(fail(format!("threaded engine refused flow {id}: {e}")));
        }
    }

    // Materialize all arrivals, in (time, flow, position) order, and
    // mint packets once so both engines see identical uids.
    let mut arrivals: Vec<(SimTime, u32, Bytes)> = Vec::new();
    for f in &sc.flows {
        for (t, len) in sc.arrivals_for(f) {
            arrivals.push((t, f.id, len));
        }
    }
    arrivals.sort_by_key(|&(t, id, _)| (t, id));
    let mut fac = PacketFactory::new();
    let packets: Vec<Packet> = arrivals
        .iter()
        .map(|&(t, id, len)| fac.make(FlowId(id), len, t))
        .collect();

    let offered = packets.len();
    let mut refusals = (0usize, 0usize);
    let mut departures = 0usize;
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());

    let mut drain_both = |sync: &mut SyncEngine,
                          thr: &mut ThreadedEngine,
                          now: SimTime,
                          max: usize,
                          departures: usize|
     -> Result<usize, String> {
        out_a.clear();
        out_b.clear();
        let na = sync
            .drain(now, max, &mut out_a)
            .map_err(|e| format!("oracle drain failed: {e}"))?;
        let nb = thr
            .drain(now, max, &mut out_b)
            .map_err(|e| format!("threaded drain failed: {e}"))?;
        if na != nb {
            return Err(format!(
                "drain count diverged at departure {departures}: oracle {na}, threaded {nb}"
            ));
        }
        for (i, (a, b)) in out_a.iter().zip(&out_b).enumerate() {
            if a.uid != b.uid {
                return Err(format!(
                    "departure {} diverged: oracle uid {} ({}), threaded uid {} ({})",
                    departures + i,
                    a.uid,
                    a.flow,
                    b.uid,
                    b.flow
                ));
            }
        }
        Ok(na)
    };

    // Replay: ingest packets in arrival order in randomly-sized chunks,
    // interleaved with pumps and partial drains at random points.
    let mut i = 0;
    while i < offered {
        let chunk = rng.uniform_range(1, 65) as usize;
        let end = (i + chunk).min(offered);
        let mut now = SimTime::ZERO;
        for &pkt in &packets[i..end] {
            now = pkt.arrival;
            let ra = sync.try_ingest(pkt);
            let rb = thr.try_ingest(pkt);
            if ra.is_err() != rb.is_err() {
                return Err(fail(format!(
                    "ingest of uid {} diverged: oracle {ra:?}, threaded {rb:?}",
                    pkt.uid
                )));
            }
            if ra.is_err() {
                refusals.0 += 1;
                refusals.1 += 1;
            }
        }
        i = end;
        match rng.uniform_range(0, 4) {
            0 => {
                if let Err(e) = sync.pump(now) {
                    return Err(fail(format!("oracle pump failed: {e}")));
                }
                thr.pump(now);
            }
            1 | 2 => {
                let max = rng.uniform_range(1, 129) as usize;
                departures +=
                    drain_both(&mut sync, &mut thr, now, max, departures).map_err(&fail)?;
            }
            _ => {} // let backlog build
        }
    }

    // Final drain to empty; both engines must agree they are done.
    let end = sc.horizon();
    let mut guard = 0;
    while sync.pending() > 0 || thr.pending() > 0 {
        departures += drain_both(&mut sync, &mut thr, end, 4096, departures).map_err(&fail)?;
        guard += 1;
        if guard > offered + 16 {
            return Err(fail(format!(
                "engines failed to drain: oracle pending {}, threaded pending {}",
                sync.pending(),
                thr.pending()
            )));
        }
    }
    if departures + refusals.0 != offered {
        return Err(fail(format!(
            "conservation broken: {offered} offered != {departures} departed + {} refused",
            refusals.0
        )));
    }

    Ok(EngineOutcome {
        shards,
        batch,
        ring_capacity,
        offered,
        departures,
        refusals: refusals.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn engine_preset_passes_across_seeds() {
        for seed in 0..8u64 {
            let sc = Scenario::from_seed(Preset::Engine, seed);
            let out = run_engine_conformance(&sc)
                .unwrap_or_else(|e| panic!("seed {seed} diverged:\n{e}"));
            assert_eq!(out.departures + out.refusals, out.offered);
            assert!(out.offered > 0, "seed {seed} generated an empty workload");
        }
    }

    #[test]
    fn failure_reports_carry_the_replay_line() {
        // Force a divergence-free run and check the outcome plumbing;
        // the replay-line formatting itself is exercised by building
        // the closure's message against a real scenario.
        let sc = Scenario::from_seed(Preset::Engine, 3);
        assert!(sc.replay_line().contains("preset=engine seed=3"));
        assert!(run_engine_conformance(&sc).is_ok());
    }
}
