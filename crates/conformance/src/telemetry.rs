//! Telemetry conformance: the counter pages against a driver-side
//! ledger, with the snapshot protocol exercised under live writers.
//!
//! A [`Preset::Telemetry`](crate::scenario::Preset::Telemetry) scenario
//! fixes the flow population; this module derives an operational
//! schedule — ingest chunks, pumps, partial drains, flow churn
//! (force-remove + revive), and injected worker kills — from the same
//! seed under [`TELEMETRY_DOMAIN`], and checks four properties in one
//! run:
//!
//! 1. **Snapshot-vs-ledger conservation.** Every replay keeps its own
//!    ledger (offered, refused, departed, force-dropped) on the driving
//!    thread. At the drained end the pages alone must reproduce it:
//!    `offered == departures + refusals + recovery_drops + force_drops
//!    + head_drops` as read *purely from the pages*
//!    ([`EngineSnapshot::conservation_gap`] is zero), with every
//!    individual ledger field bit-equal to its page counterpart and the
//!    engine page's recovery ledger equal to the supervisor's
//!    [`RecoveryStats`].
//! 2. **Torn-snapshot retry termination.** A snapshot is taken after
//!    *every* operation. The seqlock retry loop is terminating by
//!    construction — each attempt either returns a consistent copy or
//!    consumes one unit of the finite budget, so `snapshot(budget)`
//!    returns after at most `budget` attempts — and the conformance
//!    check is the stronger operational claim: under live worker
//!    writers every mid-run snapshot *succeeds* within
//!    [`SNAP_BUDGET`] attempts, and on the single-threaded sync driver
//!    (no concurrent writer exists) within exactly one. Successive
//!    snapshots must also be monotone field-by-field (counters are
//!    cumulative plain stores; a torn read shows up as a counter going
//!    backwards) and respect `enqueues <= offered - refused` and
//!    `resident >= 0` per shard page at every observation point.
//! 3. **Driver identity.** The kill-free schedule replayed on
//!    `SyncEngine` and `ThreadedEngine` must leave bit-identical pages
//!    — engine page, every shard page, and the folded totals — the
//!    telemetry extension of the engines' determinism contract.
//! 4. **Coherence under kills.** The same schedule with seeded worker
//!    kills woven in, under a seed-chosen [`RecoveryPolicy`], must
//!    still close the conservation identity at quiescence: generation
//!    bumps instead of page resets, salvaged ring residue booked as an
//!    enqueue exactly once, dead-scheduler backlog balanced by the
//!    engine page's `recovery_drops`.
//!
//! Every failure message ends with the scenario's replay line
//! (`preset=telemetry seed=N`), so any fuzz hit reproduces from the
//! log.

use crate::scenario::Scenario;
use des::SimRng;
use sfq_core::{FlowId, Packet, PacketFactory, SchedError, Scheduler};
use sfq_engine::{DegradedMode, EngineConfig, RecoveryPolicy, SyncEngine, ThreadedEngine};
use sfq_telemetry::{Aggregator, EngineSnapshot, PageSnapshot, TelemetryHub};
use simtime::{Rate, SimTime};
use std::sync::Arc;

/// Domain separator for the telemetry operational schedule, distinct
/// from the scenario-generation, arrival, and chaos streams of the same
/// seed.
pub const TELEMETRY_DOMAIN: u64 = 0x7E1E_3E7B;

/// Seqlock retry budget for snapshots taken while workers may be
/// writing. Any snapshot still torn after this many attempts is a
/// conformance failure, not a retry candidate — a worker pins a page's
/// epoch for the few plain stores of one record bracket, so a reader
/// that loses this many races has found a liveness bug.
pub const SNAP_BUDGET: usize = 1 << 16;

/// One step of the derived operational schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Ingest `packets[a..b]` in arrival order.
    Ingest(usize, usize),
    /// Asynchronous pump at the current time.
    Pump,
    /// Partial drain of up to this many packets.
    Drain(usize),
    /// Force-remove this flow (always preceded by a generated `Pump`,
    /// so the rings are empty and the discard count is exact).
    Remove(u32),
    /// (Re-)register this flow at this rate.
    Revive(u32, u64),
    /// Kill this shard's worker (kill leg only).
    Kill(usize),
}

/// What the driving thread itself observed — the ground truth every
/// page total is checked against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Ledger {
    offered: u64,
    refused: u64,
    departed: u64,
    force_drops: u64,
}

/// The engine surface the replay drives, implemented by both drivers so
/// one schedule executor produces comparable pages.
trait Driver {
    fn attach(&mut self) -> Arc<TelemetryHub>;
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError>;
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError>;
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError>;
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError>;
    fn force_remove(&mut self, flow: FlowId) -> usize;
    fn kill(&mut self, shard: usize);
    fn pending(&self) -> usize;
    /// `(recovered, dropped)` per the supervisor's books (sync: zero).
    fn recovery(&self) -> (u64, u64);
}

impl Driver for SyncEngine {
    fn attach(&mut self) -> Arc<TelemetryHub> {
        self.attach_telemetry()
    }
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        self.try_add_flow(flow, weight)
    }
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError> {
        self.try_ingest(pkt)
    }
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError> {
        SyncEngine::pump(self, now)
    }
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError> {
        SyncEngine::drain(self, now, max, out)
    }
    fn force_remove(&mut self, flow: FlowId) -> usize {
        Scheduler::force_remove_flow(self, flow)
    }
    fn kill(&mut self, _shard: usize) {
        unreachable!("kills are only scheduled on the threaded kill leg");
    }
    fn pending(&self) -> usize {
        SyncEngine::pending(self)
    }
    fn recovery(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl Driver for ThreadedEngine {
    fn attach(&mut self) -> Arc<TelemetryHub> {
        self.attach_telemetry()
    }
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        self.try_add_flow(flow, weight)
    }
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError> {
        self.try_ingest(pkt)
    }
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError> {
        ThreadedEngine::pump(self, now);
        Ok(())
    }
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError> {
        ThreadedEngine::drain(self, now, max, out)
    }
    fn force_remove(&mut self, flow: FlowId) -> usize {
        ThreadedEngine::force_remove_flow(self, flow)
    }
    fn kill(&mut self, shard: usize) {
        let _ = self.inject_worker_panic(shard);
    }
    fn pending(&self) -> usize {
        ThreadedEngine::pending(self)
    }
    fn recovery(&self) -> (u64, u64) {
        let stats = self.recovery_stats();
        (stats.recovered, stats.dropped)
    }
}

/// Statistics of a passing telemetry run.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryOutcome {
    /// Shards each engine ran.
    pub shards: usize,
    /// Packets offered per replay.
    pub offered: usize,
    /// Force-remove operations in the schedule.
    pub removals: usize,
    /// Worker kills injected in the kill leg.
    pub kills: usize,
    /// Recovery policy the kill leg ran under.
    pub policy: RecoveryPolicy,
    /// Departures of the kill leg.
    pub departures: u64,
    /// Ingest refusals of the kill leg.
    pub refusals: u64,
    /// Packets the supervisor recorded as lost to dead workers.
    pub recovery_drops: u64,
    /// Mid-run snapshots taken across all three legs, each proven to
    /// terminate within its retry budget.
    pub snapshots: usize,
}

/// `true` when every cumulative counter of `cur` is at least its value
/// in `prev` — the invariant plain-store counters guarantee to any
/// consistent reader.
fn monotone(prev: &PageSnapshot, cur: &PageSnapshot) -> bool {
    prev.generation <= cur.generation
        && prev.enqueues <= cur.enqueues
        && prev.enq_bytes <= cur.enq_bytes
        && prev.dequeues <= cur.dequeues
        && prev.deq_bytes <= cur.deq_bytes
        && prev.head_drops <= cur.head_drops
        && prev.force_drops <= cur.force_drops
        && prev.force_removals <= cur.force_removals
        && prev.offered <= cur.offered
        && prev.recovery_drops <= cur.recovery_drops
        && prev.recovered <= cur.recovered
        && prev.refused.iter().zip(&cur.refused).all(|(a, b)| a <= b)
        && prev
            .class_bytes
            .iter()
            .zip(&cur.class_bytes)
            .all(|(a, b)| a <= b)
        && prev
            .delay_hist
            .iter()
            .zip(&cur.delay_hist)
            .all(|(a, b)| a <= b)
        && prev
            .backlog_hist
            .iter()
            .zip(&cur.backlog_hist)
            .all(|(a, b)| a <= b)
}

/// Invariants every *mid-run* snapshot must satisfy, writers live or
/// not. All ops are issued from the snapshotting thread, so `offered`
/// and `refused` are stable while the pages are read; only worker-side
/// counters (enqueues, dequeues, ...) may trail the coordinator's.
fn check_midrun(prev: &Option<EngineSnapshot>, cur: &EngineSnapshot) -> Result<(), String> {
    if let Some(p) = prev {
        if !monotone(&p.engine, &cur.engine) {
            return Err("engine page counters went backwards between snapshots".into());
        }
        for (i, (a, b)) in p.shards.iter().zip(&cur.shards).enumerate() {
            if !monotone(a, b) {
                return Err(format!("shard {i} page counters went backwards"));
            }
        }
    }
    // Each accepted packet is enqueued at most once across all shard
    // pages (salvaged ring residue was never enqueued pre-crash, so its
    // re-push is that packet's only enqueue).
    if cur.totals.enqueues + cur.engine.refused_total() > cur.engine.offered {
        return Err(format!(
            "accounting overshoot: {} enqueues + {} refusals > {} offered",
            cur.totals.enqueues,
            cur.engine.refused_total(),
            cur.engine.offered
        ));
    }
    for (i, s) in cur.shards.iter().enumerate() {
        if s.resident() < 0 {
            return Err(format!(
                "shard {i} page books more departures+drops than enqueues (resident {})",
                s.resident()
            ));
        }
    }
    Ok(())
}

/// The quiescent self-consistency of one folded snapshot: each
/// histogram was written in lockstep with its counter by the same
/// single writer, so at rest the sums must tie out exactly.
fn check_self_consistency(snap: &EngineSnapshot) -> Result<(), String> {
    let delays: u64 = snap.totals.delay_hist.iter().sum();
    if delays != snap.totals.dequeues {
        return Err(format!(
            "delay histogram holds {delays} samples but the pages book {} dequeues",
            snap.totals.dequeues
        ));
    }
    let backlogs: u64 = snap.totals.backlog_hist.iter().sum();
    if backlogs != snap.totals.enqueues {
        return Err(format!(
            "backlog histogram holds {backlogs} samples but the pages book {} enqueues",
            snap.totals.enqueues
        ));
    }
    let class: u64 = snap.totals.class_bytes.iter().sum();
    if class != snap.totals.deq_bytes {
        return Err(format!(
            "per-class service books {class} bytes but the pages book {} departed bytes",
            snap.totals.deq_bytes
        ));
    }
    Ok(())
}

/// Replay one schedule on one driver with pages attached, snapshotting
/// after every operation. Returns the final quiescent snapshot (already
/// checked against the driver-side ledger) and the snapshot count.
fn replay<D: Driver + ?Sized>(
    eng: &mut D,
    sc: &Scenario,
    packets: &[Packet],
    ops: &[Op],
    mid_budget: usize,
) -> Result<(Ledger, EngineSnapshot, usize), String> {
    let hub = eng.attach();
    let agg = Aggregator::new(Arc::clone(&hub));
    for f in &sc.flows {
        eng.add(FlowId(f.id), f.weight())
            .map_err(|e| format!("flow registration refused: {e}"))?;
    }
    let mut now = SimTime::ZERO;
    let mut ledger = Ledger::default();
    let mut out = Vec::new();
    let mut prev: Option<EngineSnapshot> = None;
    let mut snapshots = 0usize;
    for op in ops {
        match *op {
            Op::Ingest(a, b) => {
                for &pkt in &packets[a..b] {
                    now = pkt.arrival;
                    ledger.offered += 1;
                    // Backpressure, a removed flow, or a parked shard:
                    // the packet is refused; conservation counts it.
                    if eng.ingest(pkt).is_err() {
                        ledger.refused += 1;
                    }
                }
            }
            Op::Pump => eng.pump(now).map_err(|e| format!("pump failed: {e}"))?,
            Op::Drain(max) => {
                out.clear();
                eng.drain(now, max, &mut out)
                    .map_err(|e| format!("drain failed: {e}"))?;
                ledger.departed += out.len() as u64;
            }
            Op::Remove(flow) => {
                ledger.force_drops += eng.force_remove(FlowId(flow)) as u64;
            }
            Op::Revive(flow, bps) => match eng.add(FlowId(flow), Rate::bps(bps)) {
                // Re-registering onto a parked shard is refused; the
                // flow simply stays gone and its later arrivals are
                // booked as refusals.
                Ok(()) | Err(SchedError::ShardDown(_)) => {}
                Err(e) => return Err(format!("revive of flow {flow} failed: {e}")),
            },
            Op::Kill(shard) => eng.kill(shard),
        }
        // The after-every-op snapshot: must land within the retry
        // budget no matter what the workers are doing right now.
        let snap = agg
            .snapshot(mid_budget)
            .map_err(|e| format!("mid-run {e} (budget {mid_budget}) — retry did not settle"))?;
        snapshots += 1;
        check_midrun(&prev, &snap).map_err(|e| format!("mid-run snapshot incoherent: {e}"))?;
        prev = Some(snap);
    }
    // Drain to quiescence; an engine that cannot drain is an error.
    let end = sc.horizon();
    let mut guard = 0;
    while eng.pending() > 0 {
        out.clear();
        eng.drain(end, 4096, &mut out)
            .map_err(|e| format!("final drain failed: {e}"))?;
        ledger.departed += out.len() as u64;
        guard += 1;
        if guard > packets.len() + 16 {
            return Err(format!(
                "engine stalled: {} packets pending after {guard} full drains",
                eng.pending()
            ));
        }
    }

    // The quiescent differential: pages alone must reproduce the
    // driver-side ledger and the supervisor's recovery books.
    let snap = agg
        .snapshot(mid_budget)
        .map_err(|e| format!("quiescent {e}"))?;
    snapshots += 1;
    check_midrun(&prev, &snap).map_err(|e| format!("final snapshot incoherent: {e}"))?;
    let (recovered, dropped) = eng.recovery();
    if snap.engine.offered != ledger.offered || snap.engine.refused_total() != ledger.refused {
        return Err(format!(
            "arrival books diverge from the ledger: pages say {} offered / {} refused, \
             driver saw {} / {}",
            snap.engine.offered,
            snap.engine.refused_total(),
            ledger.offered,
            ledger.refused
        ));
    }
    if snap.totals.dequeues != ledger.departed {
        return Err(format!(
            "pages book {} dequeues but the driver drained {} packets",
            snap.totals.dequeues, ledger.departed
        ));
    }
    if snap.totals.force_drops != ledger.force_drops {
        return Err(format!(
            "pages book {} force-drops but force-remove returned {}",
            snap.totals.force_drops, ledger.force_drops
        ));
    }
    if snap.engine.recovered != recovered || snap.engine.recovery_drops != dropped {
        return Err(format!(
            "engine page recovery ledger ({} recovered / {} dropped) diverges from \
             RecoveryStats ({recovered} / {dropped})",
            snap.engine.recovered, snap.engine.recovery_drops
        ));
    }
    let gap = snap.conservation_gap();
    if gap != 0 {
        return Err(format!(
            "page conservation broken at quiescence: gap {gap} \
             ({} offered, {} refused, {} dequeued, {} recovery-dropped, {} force-dropped, \
             {} head-dropped)",
            snap.engine.offered,
            snap.engine.refused_total(),
            snap.totals.dequeues,
            snap.engine.recovery_drops,
            snap.totals.force_drops,
            snap.totals.head_drops
        ));
    }
    check_self_consistency(&snap)?;
    Ok((ledger, snap, snapshots))
}

/// Run the full telemetry conformance for a scenario. `Ok` carries run
/// statistics; `Err` is a human-readable report ending in the replay
/// line.
pub fn run_telemetry_conformance(sc: &Scenario) -> Result<TelemetryOutcome, String> {
    let fail = |msg: String| -> String { format!("{msg}\n  {}", sc.replay_line()) };
    let mut rng = SimRng::new(sc.seed ^ TELEMETRY_DOMAIN);
    let shards = rng.uniform_range(2, 6) as usize;
    let batch = rng.uniform_range(1, 33) as usize;
    let ring_capacity = 1usize << rng.uniform_range(5, 10); // 32..=512
    let cfg = EngineConfig::new(shards)
        .batch(batch)
        .ring_capacity(ring_capacity);

    // Materialize arrivals once so every replay sees identical uids.
    let mut arrivals: Vec<(SimTime, u32, simtime::Bytes)> = Vec::new();
    for f in &sc.flows {
        for (t, len) in sc.arrivals_for(f) {
            arrivals.push((t, f.id, len));
        }
    }
    arrivals.sort_by_key(|&(t, id, _)| (t, id));
    let mut fac = PacketFactory::new();
    let packets: Vec<Packet> = arrivals
        .iter()
        .map(|&(t, id, len)| fac.make(FlowId(id), len, t))
        .collect();
    let offered = packets.len();

    // Derive the operational schedule: ingest chunks interleaved with
    // pumps, partial drains, and flow churn. Every `Remove` is preceded
    // by a `Pump` so the rings are empty when the discard count is
    // taken (both drivers' force-remove is scheduler-resident only).
    let mut ops: Vec<Op> = Vec::new();
    let mut removals = 0usize;
    let mut i = 0;
    while i < offered {
        let chunk = rng.uniform_range(1, 65) as usize;
        let end = (i + chunk).min(offered);
        ops.push(Op::Ingest(i, end));
        i = end;
        match rng.uniform_range(0, 8) {
            0 => ops.push(Op::Pump),
            1 | 2 => ops.push(Op::Drain(rng.uniform_range(1, 129) as usize)),
            3 => {
                let f = &sc.flows[rng.uniform_range(0, sc.flows.len() as u64) as usize];
                ops.push(Op::Pump);
                ops.push(Op::Remove(f.id));
                removals += 1;
            }
            4 => {
                let f = &sc.flows[rng.uniform_range(0, sc.flows.len() as u64) as usize];
                let bps = (f.weight_bps * rng.uniform_range(1, 5) / 2).max(4_000);
                ops.push(Op::Revive(f.id, bps));
            }
            _ => {} // let backlog build
        }
    }

    // Kill-augmented copy of the schedule for the chaos leg.
    let policy = match rng.uniform_range(0, 3) {
        0 => RecoveryPolicy::Restart,
        1 => RecoveryPolicy::Degrade(DegradedMode::Redistribute),
        _ => RecoveryPolicy::Degrade(DegradedMode::Park),
    };
    let kills = rng.uniform_range(1, 4) as usize;
    let mut kill_ops = ops.clone();
    for _ in 0..kills {
        let pos = rng.uniform_range(0, kill_ops.len() as u64 + 1) as usize;
        let shard = rng.uniform_range(0, shards as u64) as usize;
        kill_ops.insert(pos, Op::Kill(shard));
    }

    // --- Leg 1: sync oracle. No concurrent writer exists, so every
    // snapshot must succeed on its first attempt (budget 1).
    let (sync_ledger, sync_snap, snaps1) = replay(&mut SyncEngine::new(cfg), sc, &packets, &ops, 1)
        .map_err(|e| fail(format!("sync leg: {e}")))?;

    // --- Leg 2: threaded, kill-free — the pages are part of the
    // drivers' determinism contract, so they must be bit-identical to
    // the sync oracle's.
    let (thr_ledger, thr_snap, snaps2) = replay(
        &mut ThreadedEngine::new(cfg),
        sc,
        &packets,
        &ops,
        SNAP_BUDGET,
    )
    .map_err(|e| fail(format!("threaded leg: {e}")))?;
    if thr_ledger != sync_ledger {
        return Err(fail(format!(
            "driver ledgers diverged on the kill-free schedule: sync {sync_ledger:?} \
             vs threaded {thr_ledger:?}"
        )));
    }
    if thr_snap.engine != sync_snap.engine {
        return Err(fail(
            "engine pages diverged between drivers on the kill-free schedule".to_string(),
        ));
    }
    if thr_snap.shards != sync_snap.shards {
        let at = thr_snap
            .shards
            .iter()
            .zip(&sync_snap.shards)
            .position(|(a, b)| a != b);
        return Err(fail(format!(
            "shard pages diverged between drivers on the kill-free schedule \
             (first differing shard {at:?})"
        )));
    }

    // --- Leg 3: threaded with seeded worker kills under the seeded
    // recovery policy. The replay's quiescent checks already prove the
    // conservation identity and the RecoveryStats mirror; the pages are
    // *not* compared to the oracle here (recovery is real divergence).
    let (kill_ledger, kill_snap, snaps3) = replay(
        &mut ThreadedEngine::new(cfg.recovery(policy)),
        sc,
        &packets,
        &kill_ops,
        SNAP_BUDGET,
    )
    .map_err(|e| fail(format!("kill leg ({policy:?}): {e}")))?;

    Ok(TelemetryOutcome {
        shards,
        offered,
        removals,
        kills,
        policy,
        departures: kill_ledger.departed,
        refusals: kill_ledger.refused,
        recovery_drops: kill_snap.engine.recovery_drops,
        snapshots: snaps1 + snaps2 + snaps3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn telemetry_preset_passes_across_seeds() {
        for seed in 0..6u64 {
            let sc = Scenario::from_seed(Preset::Telemetry, seed);
            let out = run_telemetry_conformance(&sc)
                .unwrap_or_else(|e| panic!("seed {seed} failed:\n{e}"));
            assert!(out.offered > 0, "seed {seed} generated an empty workload");
            assert!(out.kills > 0);
            assert!(
                out.snapshots > out.offered / 64,
                "seed {seed}: the after-every-op snapshot discipline was not exercised"
            );
        }
    }

    #[test]
    fn telemetry_replay_line_round_trips() {
        let sc = Scenario::from_seed(Preset::Telemetry, 11);
        assert!(sc.replay_line().contains("preset=telemetry seed=11"));
        let back = Scenario::from_replay_line(&sc.replay_line()).expect("parse");
        assert_eq!(back.preset, Preset::Telemetry);
        assert_eq!(format!("{back:?}"), format!("{sc:?}"));
    }
}
