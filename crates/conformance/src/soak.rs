//! Long-horizon overload soak: graceful degradation and recovery.
//!
//! [`run_soak`] drives a [`Preset::Soak`] scenario — a deliberately
//! overbooked single hop with tight buffer caps — through a
//! `netsim::SwitchCore` under the scenario's [`DropKind`], with the
//! churn/revive fault schedule applied, and checks the recovery
//! invariants:
//!
//! - **Fairness returns after overload.** Under tail drop, packets are
//!   refused at the door before tagging, so Theorem 1 keeps holding
//!   between the continuously backlogged flows even *during* overload.
//!   Head-drop/LWP evictions instead leave the evicted packet's tag
//!   span charged to its flow (freshness is bought with delivered
//!   service), so the overload-phase spread may exceed the bound — but
//!   once the overload backlog drains and the busy period ends, SFQ's
//!   start-at-v rule forgives the charge, and a fresh watermark window
//!   opened at the scenario's `recovery_at_ms` must come back under
//!   `l_f/r_f + l_m/r_m`.
//! - **Pressure is signalled and released.** Every
//!   [`Backpressure::Engage`] emitted while caps shed load is matched
//!   by a release once the run drains.
//! - **Churned flows recover.** The cross flow removed mid-overload
//!   completes packets again after its revive.
//!
//! Any scheduler error aborts with the scenario's replay line printed,
//! so a soak failure found by the fuzzer reproduces from the log alone.

use crate::exec::{faults_from, materialize_packets, FaultAction};
use crate::faults::hop_profile;
use crate::scenario::{DropKind, Scenario};
use analysis::sfq_fairness_bound;
use netsim::{DropPolicy, SwitchCore};
use sfq_core::obs::Backpressure;
use sfq_core::{FlowId, Packet, SchedError, SchedObserver, Sfq, TieBreak};
use sfq_obs::FlowMetrics;
use simtime::{Ratio, SimTime};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Map the DSL's drop policy onto the switch's.
pub fn drop_policy_of(kind: DropKind) -> DropPolicy {
    match kind {
        DropKind::Tail => DropPolicy::TailDrop,
        DropKind::Head => DropPolicy::HeadDrop,
        DropKind::Lwp => DropPolicy::LowestWeightPressure,
    }
}

/// Everything one soak run produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Replay line reproducing the run.
    pub replay: String,
    /// Packets injected (all flows).
    pub injected: usize,
    /// Packets fully transmitted.
    pub completed: u64,
    /// Packets shed by the buffer caps (refusals and evictions).
    pub shed: u64,
    /// Arrivals refused while their flow was churned out.
    pub refused: u64,
    /// Backlog discarded by force-removals.
    pub discarded: u64,
    /// `Backpressure::Engage` transitions observed.
    pub engages: u64,
    /// `Backpressure::Release` transitions observed.
    pub releases: u64,
    /// Completions of the churned flow after its revive instant.
    pub post_revive_completions: u64,
    /// Normalized-service spread watermark between the two heavy flows
    /// over the overload phase. Exceeds the bound by design under
    /// head-drop/LWP (evictions charge the flow); stays under it for
    /// tail drop.
    pub overload_spread: Ratio,
    /// Spread watermark over the fresh window opened at
    /// `recovery_at_ms` — must be under the bound for *every* policy.
    pub recovery_spread: Ratio,
    /// The Theorem 1 bound `l_1/r_1 + l_2/r_2` for the heavy pair.
    pub fairness_bound: Ratio,
    /// The drop policy the run used.
    pub policy: DropKind,
}

impl SoakOutcome {
    /// True when every recovery invariant held.
    pub fn healthy(&self) -> bool {
        self.recovery_spread <= self.fairness_bound
            && (self.policy != DropKind::Tail || self.overload_spread <= self.fairness_bound)
            && self.shed > 0
            && self.engages > 0
            && self.releases == self.engages
            && self.post_revive_completions > 0
    }
}

/// Counts backpressure transitions from the port's drop observer.
#[derive(Default)]
struct BpCount {
    engages: u64,
    releases: u64,
}

impl SchedObserver for BpCount {
    fn on_backpressure(&mut self, _time: SimTime, _flow: FlowId, state: Backpressure) {
        match state {
            Backpressure::Engage => self.engages += 1,
            Backpressure::Release => self.releases += 1,
        }
    }
}

/// Run the overload soak for a (single-hop) scenario. Panics with the
/// replay line on an unexpected scheduler error — buffer-full sheds are
/// the expected steady state, not errors.
pub fn run_soak(sc: &Scenario) -> SoakOutcome {
    assert_eq!(sc.hops, 1, "the soak runner drives a single hop");
    let replay = sc.replay_line();
    let horizon = sc.horizon();

    let metrics = Rc::new(RefCell::new(FlowMetrics::new()));
    let sched = Sfq::with_observer(TieBreak::Fifo, Rc::clone(&metrics));
    let mut sw = SwitchCore::new(
        Box::new(sched),
        hop_profile(sc, 0, horizon),
        sc.per_flow_cap,
    );
    sw.set_shared_cap(sc.shared_cap);
    sw.set_drop_policy(drop_policy_of(sc.drop_policy));
    let bp = Rc::new(RefCell::new(BpCount::default()));
    sw.set_drop_observer(Box::new(Rc::clone(&bp)));
    for f in &sc.flows {
        sw.add_flow(FlowId(f.id), f.weight());
    }

    let arrivals = materialize_packets(sc);
    let faults = faults_from(sc);
    let mut recovery_at: Option<SimTime> =
        sc.recovery_at_ms.map(|ms| SimTime::from_millis(ms as i128));
    let revive_at: Option<SimTime> = sc
        .churns
        .iter()
        .filter_map(|c| c.revive_ms.map(|ms| SimTime::from_millis(ms as i128)))
        .max();
    let churned: HashSet<u32> = sc.churns.iter().map(|c| c.flow).collect();

    let heavy = (FlowId(sc.flows[0].id), FlowId(sc.flows[1].id));
    let mut overload_spread = Ratio::ZERO;
    let mut next_arrival = 0usize;
    let mut next_fault = 0usize;
    let mut removed: HashSet<FlowId> = HashSet::new();
    let mut in_flight: Option<(Packet, SimTime)> = None;
    let mut completed = 0u64;
    let mut refused = 0u64;
    let mut discarded = 0u64;
    let mut post_revive_completions = 0u64;

    loop {
        let arr_t = arrivals.get(next_arrival).map(|p| p.arrival);
        let fault_t = faults.get(next_fault).map(|f| f.at);
        let dep_t = in_flight.as_ref().map(|&(_, d)| d);
        let now = match [arr_t, fault_t, dep_t].into_iter().flatten().min() {
            Some(t) => t,
            None => break, // arrivals exhausted, faults fired, drained
        };
        // Open the fresh recovery watermark window: reset the metrics
        // and re-register the weights (a weight update, not a tag
        // reset). Event-driven, so this fires at the first event past
        // the recovery instant — equivalent, since metrics only change
        // at events.
        if recovery_at.is_some_and(|r| now >= r) {
            recovery_at = None;
            overload_spread = {
                let m = metrics.borrow();
                m.worst_spread_between(heavy.0, heavy.1)
                    .unwrap_or(Ratio::ZERO)
            };
            *metrics.borrow_mut() = FlowMetrics::new();
            for f in &sc.flows {
                if !removed.contains(&FlowId(f.id)) {
                    sw.add_flow(FlowId(f.id), f.weight());
                }
            }
        }
        if dep_t == Some(now) {
            let Some((pkt, _)) = in_flight.take() else {
                unreachable!("dep_t comes from in_flight")
            };
            sw.complete(now);
            completed += 1;
            if churned.contains(&pkt.flow.0) && revive_at.is_some_and(|r| now >= r) {
                post_revive_completions += 1;
            }
        }
        while next_fault < faults.len() && faults[next_fault].at == now {
            match faults[next_fault].action {
                FaultAction::ForceRemove(flow) => {
                    discarded += sw.force_remove_flow(now, flow) as u64;
                    removed.insert(flow);
                }
                FaultAction::Revive(flow, weight) => {
                    sw.add_flow(flow, weight);
                    removed.remove(&flow);
                }
            }
            next_fault += 1;
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival == now {
            let pkt = arrivals[next_arrival];
            next_arrival += 1;
            if removed.contains(&pkt.flow) {
                refused += 1;
                continue;
            }
            match sw.try_offer(now, pkt) {
                Ok(()) | Err(SchedError::BufferFull(_)) => {}
                Err(e) => panic!("soak scheduler error ({e})\n  {replay}"),
            }
        }
        if in_flight.is_none() {
            if let Some((pkt, done)) = sw.try_start(now) {
                in_flight = Some((pkt, done));
            }
        }
    }

    let shed: u64 = sw.all_drops().map(|(_, n)| n).sum();
    let (f1, f2) = (&sc.flows[0], &sc.flows[1]);
    let recovery_spread = {
        let m = metrics.borrow();
        m.worst_spread_between(heavy.0, heavy.1)
            .unwrap_or(Ratio::ZERO)
    };
    // No recovery window configured: the whole run is one window.
    if sc.recovery_at_ms.is_none() {
        overload_spread = recovery_spread;
    }
    let fairness_bound = sfq_fairness_bound(f1.max_len(), f1.weight(), f2.max_len(), f2.weight());
    let bp = bp.borrow();
    SoakOutcome {
        replay,
        injected: arrivals.len(),
        completed,
        shed,
        refused,
        discarded,
        engages: bp.engages,
        releases: bp.releases,
        post_revive_completions,
        overload_spread,
        recovery_spread,
        fairness_bound,
        policy: sc.drop_policy,
    }
}
