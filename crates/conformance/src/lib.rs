//! # conformance — scenario DSL, differential oracle, fault injection
//!
//! The test harness that drives every other crate end to end:
//!
//! - [`scenario`]: a deterministic scenario DSL — flows, rates,
//!   packet-size distributions, FC/EBF server profiles, and a
//!   fault-injection schedule — generated from `(preset, seed)` and
//!   replayable from a single printed line,
//! - [`exec`]: a single-server executor with timed force-remove /
//!   revive faults,
//! - [`faults`]: droop materialization and exact effective-δ
//!   recomputation, so analytical bounds stay theorems under faults,
//! - [`diff`]: the differential oracle — two schedulers (or a
//!   scheduler against an `analysis` bound) on identical inputs, first
//!   divergence rendered as a minimized observer-event trace,
//! - [`e2e`]: Theorem 6 / Corollary 1 conformance over
//!   `netsim::Tandem` chains of FC servers with injected capacity
//!   droop, flow churn, and buffer-cap drops,
//! - [`engine`]: sharded-engine differential — one seeded API call
//!   schedule replayed against `sfq_engine::SyncEngine` (oracle) and
//!   `sfq_engine::ThreadedEngine`, requiring bit-identical departures
//!   and refusals under real thread interleavings,
//! - [`fast`]: fixed-point fast-path differential — quantization-safe
//!   workloads replayed against `SfqFast`/`ScfqFast` and their exact
//!   rational counterparts, requiring bit-identical departures,
//! - [`pool`]: pooled-backend differential — churn-heavy workloads
//!   replayed on the slab-pooled `FlowFifos` backend against the owned
//!   oracle backend, requiring bit-identical departures for all four
//!   schedulers,
//! - [`chaos`]: live-reconfiguration and shard-failure conformance —
//!   seeded `SetWeight` reconfigurations and injected worker kills
//!   mid-backlog, checking no-op tag-rewrite bit-identity against the
//!   unreconfigured oracle on both engine drivers, sync-vs-threaded
//!   identity for the reconfigured schedule, exact packet conservation
//!   (`offered == departed + refused + dropped`) under every recovery
//!   policy, and Theorem 1 reconvergence after a mid-backlog weight
//!   change,
//! - [`telemetry`]: telemetry-plane conformance — seeded operational
//!   schedules (ingest chunks, pumps, partial drains, flow churn,
//!   worker kills) replayed on both engine drivers with counter pages
//!   attached, checking snapshot-vs-ledger conservation as read purely
//!   from the pages, seqlock retry termination under live writers,
//!   bit-identical pages across drivers on kill-free schedules, and
//!   page coherence (generation bumps, exactly-once booking) under
//!   every recovery policy,
//! - [`graph`]: forwarding-graph conformance — a multi-port chain with
//!   shared intermediate ports and ingress policers, checked for
//!   Theorem 6 along every path, Corollary 1 for the shaped observed
//!   flow, Theorem 1 fairness at every port, sync-vs-threaded port
//!   identity, and exact packet-arena book balance.
//!
//! Every failure anywhere in the harness prints
//! `conformance replay: preset=<p> seed=<s>`; feeding that line to
//! [`Scenario::from_replay_line`] reproduces the exact run.

#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod e2e;
pub mod engine;
pub mod exec;
pub mod fast;
pub mod faults;
pub mod graph;
pub mod pool;
pub mod scenario;
pub mod soak;
pub mod telemetry;

pub use chaos::{run_chaos_conformance, ChaosOutcome, CHAOS_DOMAIN};
pub use diff::{
    check_against_bound, diff_schedulers, first_divergence, BoundCheck, DiffReport, SchedKind,
};
pub use e2e::{embed_survivors, run_tandem_conformance, E2eOutcome};
pub use engine::{run_engine_conformance, EngineOutcome};
pub use exec::{
    faults_from, materialize_packets, register_flows, run_faulted, run_faulted_checked, ExecReport,
    FaultAction, TimedFault,
};
pub use fast::{run_fast_conformance, FastOutcome};
pub use faults::{effective_delta_bits, hop_profile};
pub use graph::{run_graph_conformance, run_graph_oracle, GraphOutcome};
pub use pool::{run_pool_conformance, PoolOutcome};
pub use scenario::{
    other_lmax_at, Churn, Droop, DropKind, FlowSpec, Preset, Scenario, ServerSpec, SizeDist,
    SourceKind, OBSERVED_FLOW,
};
pub use soak::{drop_policy_of, run_soak, SoakOutcome};
pub use telemetry::{run_telemetry_conformance, TelemetryOutcome, SNAP_BUDGET, TELEMETRY_DOMAIN};
