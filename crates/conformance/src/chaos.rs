//! Chaos conformance: live reconfiguration and shard-failure recovery.
//!
//! A [`Preset::Chaos`](crate::scenario::Preset::Chaos) scenario fixes
//! the flow population; this module derives an *operational* schedule —
//! ingest chunks, pumps, partial drains, `SetWeight` reconfigurations,
//! and injected worker kills — from the same seed under
//! [`CHAOS_DOMAIN`], and checks three properties in one run:
//!
//! 1. **Reconfig-only identity.** With kills stripped, the schedule is
//!    replayed against `SyncEngine` (oracle) and `ThreadedEngine`:
//!    departures and refusals must be bit-identical. Additionally, the
//!    same schedule with every `SetWeight` made a *no-op* (the flow's
//!    current weight) must be bit-identical to an *unreconfigured*
//!    oracle on both drivers — the tag-rewrite rule's fixed-point
//!    property: rewriting a backlogged chain at its own rate reproduces
//!    every tag exactly, because Eq. 4's max resolves to the flow term
//!    (`S_j = F_{j-1}`) while the flow stays backlogged (see
//!    `docs/robustness.md`).
//! 2. **Conservation and liveness under kills.** The full schedule
//!    (reconfigs + seeded worker kills mid-backlog) runs on a
//!    `ThreadedEngine` under a seed-chosen [`RecoveryPolicy`]. At the
//!    drained end: no global stall (`pending == 0`), and exact packet
//!    conservation — `offered == departures + refusals +
//!    RecoveryStats::dropped` — including one post-recovery probe per
//!    flow, which under `Restart` must *depart* (the rebuilt shard
//!    serves its flows again).
//! 3. **Fairness reconvergence.** A two-flow leaf `Sfq` with
//!    `FlowMetrics` attached takes a mid-backlog weight change; after
//!    the settling window (one old-rate head packet per flow — the only
//!    tags the rewrite preserves), a fresh watermark window must come
//!    back under the Theorem 1 bound at the *new* weights.
//!
//! Every failure message ends with the scenario's replay line
//! (`preset=chaos seed=N`), so any fuzz hit reproduces from the log.

use crate::scenario::Scenario;
use analysis::sfq_fairness_bound;
use des::SimRng;
use sfq_core::{FlowId, Packet, PacketFactory, SchedError, Scheduler, Sfq, TieBreak};
use sfq_engine::{DegradedMode, EngineConfig, RecoveryPolicy, SyncEngine, ThreadedEngine};
use sfq_obs::FlowMetrics;
use simtime::{Bytes, Rate, Ratio, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Domain separator for the chaos operational schedule, distinct from
/// the scenario-generation, arrival, and engine-schedule streams of the
/// same seed.
pub const CHAOS_DOMAIN: u64 = 0xC4A0_50C4;

/// One step of the derived operational schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Ingest `packets[a..b]` in arrival order.
    Ingest(usize, usize),
    /// Asynchronous pump at the current time.
    Pump,
    /// Partial drain of up to this many packets.
    Drain(usize),
    /// Apply reconfiguration `k` of the side table (the replay mode
    /// decides whether it is stripped, a no-op, or the real change).
    Reconfig(usize),
    /// Kill this shard's worker (threaded chaos leg only).
    Kill(usize),
}

/// How a replay treats the schedule's `SetWeight` reconfigurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WeightMode {
    /// Skip them entirely (the unreconfigured oracle).
    Strip,
    /// Apply them at the flow's current weight (the no-op schedule).
    Noop,
    /// Apply the real weight changes.
    Real,
}

/// The engine surface the replay drives, implemented by both drivers so
/// one schedule executor produces comparable traces.
trait Driver {
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError>;
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError>;
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError>;
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError>;
    fn set_weight(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError>;
    fn kill(&mut self, shard: usize);
    fn pending(&self) -> usize;
}

impl Driver for SyncEngine {
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        self.try_add_flow(flow, weight)
    }
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError> {
        self.try_ingest(pkt)
    }
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError> {
        SyncEngine::pump(self, now)
    }
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError> {
        SyncEngine::drain(self, now, max, out)
    }
    fn set_weight(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        SyncEngine::try_set_weight(self, flow, weight)
    }
    fn kill(&mut self, _shard: usize) {
        unreachable!("kills are only scheduled on the threaded driver");
    }
    fn pending(&self) -> usize {
        SyncEngine::pending(self)
    }
}

impl Driver for ThreadedEngine {
    fn add(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        self.try_add_flow(flow, weight)
    }
    fn ingest(&mut self, pkt: Packet) -> Result<(), SchedError> {
        self.try_ingest(pkt)
    }
    fn pump(&mut self, now: SimTime) -> Result<(), SchedError> {
        ThreadedEngine::pump(self, now);
        Ok(())
    }
    fn drain(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> Result<usize, SchedError> {
        ThreadedEngine::drain(self, now, max, out)
    }
    fn set_weight(&mut self, flow: FlowId, weight: Rate) -> Result<(), SchedError> {
        ThreadedEngine::try_set_weight(self, flow, weight)
    }
    fn kill(&mut self, shard: usize) {
        let _ = self.inject_worker_panic(shard);
    }
    fn pending(&self) -> usize {
        ThreadedEngine::pending(self)
    }
}

/// Statistics of a passing chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOutcome {
    /// Shards each engine ran.
    pub shards: usize,
    /// Packets offered per replay (excluding post-recovery probes).
    pub offered: usize,
    /// `SetWeight` reconfigurations in the schedule.
    pub reconfigs: usize,
    /// Worker kills injected in the chaos leg.
    pub kills: usize,
    /// Departures of the real-reconfiguration identity leg (identical
    /// on both drivers by construction — or the run failed).
    pub departures: usize,
    /// Ingest refusals of the identity leg.
    pub refusals: usize,
    /// Recovery policy the chaos leg ran under.
    pub policy: RecoveryPolicy,
    /// Departures of the chaos (kill) leg, probes included.
    pub chaos_departures: usize,
    /// Packets the supervisor recorded as lost to dead workers.
    pub chaos_dropped: u64,
    /// Worker deaths detected and recovered from.
    pub recoveries: u64,
    /// Post-reconfiguration fairness spread of the reconvergence leg.
    pub recovery_spread: Ratio,
    /// The Theorem 1 bound at the new weights.
    pub fairness_bound: Ratio,
}

/// Replay one schedule on one driver, returning the departure uid
/// sequence and the ingest-refusal count. Drains to empty at the end;
/// an engine that cannot drain (a stalled shard) is an error.
fn replay<D: Driver + ?Sized>(
    eng: &mut D,
    sc: &Scenario,
    packets: &[Packet],
    ops: &[Op],
    recfg: &[(FlowId, Rate, Rate)],
    mode: WeightMode,
) -> Result<(Vec<u64>, usize), String> {
    for f in &sc.flows {
        eng.add(FlowId(f.id), f.weight())
            .map_err(|e| format!("flow registration refused: {e}"))?;
    }
    let mut now = SimTime::ZERO;
    let mut deps = Vec::new();
    let mut refusals = 0usize;
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Ingest(a, b) => {
                for &pkt in &packets[a..b] {
                    now = pkt.arrival;
                    match eng.ingest(pkt) {
                        Ok(()) => {}
                        // Backpressure or a parked flow: the packet is
                        // refused; conservation counts it.
                        Err(_) => refusals += 1,
                    }
                }
            }
            Op::Pump => eng.pump(now).map_err(|e| format!("pump failed: {e}"))?,
            Op::Drain(max) => {
                out.clear();
                eng.drain(now, max, &mut out)
                    .map_err(|e| format!("drain failed: {e}"))?;
                deps.extend(out.iter().map(|p| p.uid));
            }
            Op::Reconfig(k) => {
                let (flow, real, current) = recfg[k];
                let w = match mode {
                    WeightMode::Strip => continue,
                    WeightMode::Noop => current,
                    WeightMode::Real => real,
                };
                match eng.set_weight(flow, w) {
                    // A reconfiguration refused because the flow's
                    // shard is down (degraded chaos leg) is expected.
                    Ok(()) | Err(SchedError::ShardDown(_)) => {}
                    Err(e) => return Err(format!("SetWeight({flow}, {w:?}) failed: {e}")),
                }
            }
            Op::Kill(shard) => eng.kill(shard),
        }
    }
    let end = sc.horizon();
    let mut guard = 0;
    while eng.pending() > 0 {
        out.clear();
        eng.drain(end, 4096, &mut out)
            .map_err(|e| format!("final drain failed: {e}"))?;
        deps.extend(out.iter().map(|p| p.uid));
        guard += 1;
        if guard > packets.len() + 16 {
            return Err(format!(
                "engine stalled: {} packets pending after {guard} full drains",
                eng.pending()
            ));
        }
    }
    Ok((deps, refusals))
}

/// Run the full chaos conformance for a scenario. `Ok` carries run
/// statistics; `Err` is a human-readable report ending in the replay
/// line.
pub fn run_chaos_conformance(sc: &Scenario) -> Result<ChaosOutcome, String> {
    let fail = |msg: String| -> String { format!("{msg}\n  {}", sc.replay_line()) };
    let mut rng = SimRng::new(sc.seed ^ CHAOS_DOMAIN);
    let shards = rng.uniform_range(2, 6) as usize;
    let batch = rng.uniform_range(1, 33) as usize;
    let ring_capacity = 1usize << rng.uniform_range(5, 10); // 32..=512
    let cfg = EngineConfig::new(shards)
        .batch(batch)
        .ring_capacity(ring_capacity);

    // Materialize arrivals once so every replay sees identical uids.
    let mut arrivals: Vec<(SimTime, u32, Bytes)> = Vec::new();
    for f in &sc.flows {
        for (t, len) in sc.arrivals_for(f) {
            arrivals.push((t, f.id, len));
        }
    }
    arrivals.sort_by_key(|&(t, id, _)| (t, id));
    let mut fac = PacketFactory::new();
    let packets: Vec<Packet> = arrivals
        .iter()
        .map(|&(t, id, len)| fac.make(FlowId(id), len, t))
        .collect();
    let offered = packets.len();

    // Derive the operational schedule: ingest chunks interleaved with
    // pumps, partial drains, and weight reconfigurations. The real
    // target weight scales the original by 0.5x..2x (never zero), so
    // every reconfiguration is a legal Eq. 36 rate.
    let mut ops: Vec<Op> = Vec::new();
    let mut recfg: Vec<(FlowId, Rate, Rate)> = Vec::new();
    let mut i = 0;
    while i < offered {
        let chunk = rng.uniform_range(1, 65) as usize;
        let end = (i + chunk).min(offered);
        ops.push(Op::Ingest(i, end));
        i = end;
        match rng.uniform_range(0, 6) {
            0 => ops.push(Op::Pump),
            1 | 2 => ops.push(Op::Drain(rng.uniform_range(1, 129) as usize)),
            3 => {
                let f = &sc.flows[rng.uniform_range(0, sc.flows.len() as u64) as usize];
                let real = Rate::bps((f.weight_bps * rng.uniform_range(1, 5) / 2).max(4_000));
                recfg.push((FlowId(f.id), real, f.weight()));
                ops.push(Op::Reconfig(recfg.len() - 1));
            }
            _ => {} // let backlog build
        }
    }
    let reconfigs = recfg.len();

    // Kill-augmented copy of the schedule for the chaos leg.
    let policy = match rng.uniform_range(0, 3) {
        0 => RecoveryPolicy::Restart,
        1 => RecoveryPolicy::Degrade(DegradedMode::Redistribute),
        _ => RecoveryPolicy::Degrade(DegradedMode::Park),
    };
    let kills = rng.uniform_range(1, 4) as usize;
    let mut chaos_ops = ops.clone();
    for _ in 0..kills {
        let pos = rng.uniform_range(0, chaos_ops.len() as u64 + 1) as usize;
        let shard = rng.uniform_range(0, shards as u64) as usize;
        chaos_ops.insert(pos, Op::Kill(shard));
    }

    // --- Leg 1a: no-op reconfigurations are bit-identical to the
    // unreconfigured oracle, on both drivers.
    let (plain, plain_ref) = replay(
        &mut SyncEngine::new(cfg),
        sc,
        &packets,
        &ops,
        &recfg,
        WeightMode::Strip,
    )
    .map_err(|e| fail(format!("unreconfigured oracle: {e}")))?;
    for (name, eng) in [
        ("sync", &mut SyncEngine::new(cfg) as &mut dyn Driver),
        ("threaded", &mut ThreadedEngine::new(cfg) as &mut dyn Driver),
    ] {
        let (noop, noop_ref) = replay(eng, sc, &packets, &ops, &recfg, WeightMode::Noop)
            .map_err(|e| fail(format!("no-op {name} replay: {e}")))?;
        if noop != plain || noop_ref != plain_ref {
            let at = noop.iter().zip(&plain).position(|(a, b)| a != b);
            return Err(fail(format!(
                "no-op reconfiguration schedule diverged from the unreconfigured \
                 oracle on the {name} driver (first differing departure index {at:?}, \
                 refusals {noop_ref} vs {plain_ref}) — the tag rewrite is not a \
                 fixed point at the current weight"
            )));
        }
    }

    // --- Leg 1b: real reconfigurations, sync vs threaded identity.
    let (sync_deps, sync_ref) = replay(
        &mut SyncEngine::new(cfg),
        sc,
        &packets,
        &ops,
        &recfg,
        WeightMode::Real,
    )
    .map_err(|e| fail(format!("reconfigured oracle: {e}")))?;
    let (thr_deps, thr_ref) = replay(
        &mut ThreadedEngine::new(cfg),
        sc,
        &packets,
        &ops,
        &recfg,
        WeightMode::Real,
    )
    .map_err(|e| fail(format!("reconfigured threaded replay: {e}")))?;
    if thr_deps != sync_deps || thr_ref != sync_ref {
        let at = thr_deps.iter().zip(&sync_deps).position(|(a, b)| a != b);
        return Err(fail(format!(
            "reconfigured schedule diverged between drivers (first differing \
             departure index {at:?}; counts {} vs {}; refusals {thr_ref} vs {sync_ref})",
            thr_deps.len(),
            sync_deps.len(),
        )));
    }
    let departures = sync_deps.len();
    if departures + sync_ref != offered {
        return Err(fail(format!(
            "identity-leg conservation broken: {offered} offered != {departures} \
             departed + {sync_ref} refused"
        )));
    }

    // --- Leg 2: worker kills under the seeded recovery policy.
    let mut eng = ThreadedEngine::new(cfg.recovery(policy));
    let (chaos_deps, chaos_ref) =
        replay(&mut eng, sc, &packets, &chaos_ops, &recfg, WeightMode::Real)
            .map_err(|e| fail(format!("chaos replay ({policy:?}): {e}")))?;
    // Post-recovery probes: one fresh packet per flow. Under `Restart`
    // every shard is alive again, so every probe must depart; degraded
    // policies may refuse (parked flow) or drop (a kill detected by the
    // probe's own drain), but never strand a packet.
    let end = sc.horizon();
    let mut probe_refused = 0usize;
    let mut probes_in = 0usize;
    for f in &sc.flows {
        let p = fac.make(FlowId(f.id), f.max_len(), end);
        match eng.try_ingest(p) {
            Ok(()) => probes_in += 1,
            Err(SchedError::ShardDown(_)) => probe_refused += 1,
            Err(e) => return Err(fail(format!("probe ingest of flow {} failed: {e}", f.id))),
        }
    }
    let mut probe_out: Vec<Packet> = Vec::new();
    let mut guard = 0;
    while eng.pending() > 0 {
        let mut out = Vec::new();
        eng.drain(end, 4096, &mut out)
            .map_err(|e| fail(format!("probe drain failed: {e}")))?;
        probe_out.extend(out);
        guard += 1;
        if guard > probes_in + 16 {
            return Err(fail(format!(
                "probe drain stalled with {} pending ({policy:?})",
                eng.pending()
            )));
        }
    }
    let stats = eng.recovery_stats();
    if policy == RecoveryPolicy::Restart && (probe_out.len() != probes_in || probe_refused != 0) {
        return Err(fail(format!(
            "restart policy did not restore service: {} of {probes_in} probes \
             departed, {probe_refused} refused",
            probe_out.len()
        )));
    }
    // Conservation over the whole chaos leg, probes included: every
    // offered packet either departed, was refused at ingest, or is in
    // the supervisor's drop ledger. Anything else is a leak.
    let total_offered = offered + sc.flows.len();
    let total_departed = chaos_deps.len() + probe_out.len();
    let total_refused = chaos_ref + probe_refused;
    if total_departed + total_refused + stats.dropped as usize != total_offered {
        return Err(fail(format!(
            "chaos conservation broken ({policy:?}, {kills} kills): {total_offered} \
             offered != {total_departed} departed + {total_refused} refused + {} dropped",
            stats.dropped
        )));
    }

    // --- Leg 3: fairness reconvergence after a mid-backlog weight
    // change on a leaf scheduler with metrics attached.
    let (recovery_spread, fairness_bound) = reconvergence_leg(&mut rng).map_err(fail)?;

    Ok(ChaosOutcome {
        shards,
        offered,
        reconfigs,
        kills,
        departures,
        refusals: sync_ref,
        policy,
        chaos_departures: total_departed,
        chaos_dropped: stats.dropped,
        recoveries: stats.recoveries,
        recovery_spread,
        fairness_bound,
    })
}

/// Two flows, both continuously backlogged, take a mid-run weight
/// change; after the settling window a fresh watermark window must obey
/// Theorem 1 at the new weights. Returns `(spread, bound)`.
///
/// The settling window is exact, not heuristic: the tag rewrite leaves
/// only each flow's *head* packet carrying old-rate tags (the head
/// keeps its finish tag so the heap entry stays valid), so the schedule
/// is fully re-converged once one packet per flow has departed — at
/// most `Σ_f l^max_f / C` of service. The leg serves four packets
/// before opening the window, twice that bound.
fn reconvergence_leg(rng: &mut SimRng) -> Result<(Ratio, Ratio), String> {
    let metrics = Rc::new(RefCell::new(FlowMetrics::new()));
    let mut sfq = Sfq::with_observer(TieBreak::Fifo, Rc::clone(&metrics));
    let (f1, f2) = (FlowId(1), FlowId(2));
    let (l1, l2) = (
        Bytes::new(rng.uniform_range(200, 1_001)),
        Bytes::new(rng.uniform_range(200, 1_001)),
    );
    let w1 = Rate::bps(1_000 * rng.uniform_range(8, 65));
    let w2 = Rate::bps(1_000 * rng.uniform_range(8, 65));
    sfq.add_flow(f1, w1);
    sfq.add_flow(f2, w2);

    // Deep standing backlogs so both flows stay backlogged through the
    // change, the settling window, and the measurement window — 120
    // each covers the worst case where the post-change weight ratio
    // steers nearly all 94 dequeues to one flow.
    let mut fac = PacketFactory::new();
    let t = SimTime::ZERO;
    for _ in 0..120 {
        sfq.enqueue(t, fac.make(f1, l1, t));
        sfq.enqueue(t, fac.make(f2, l2, t));
    }
    for _ in 0..10 {
        sfq.dequeue(t);
    }
    // The reconfiguration: both flows change rate mid-backlog.
    let w1n = Rate::bps(w1.as_bps() * rng.uniform_range(1, 5) / 2).max(Rate::bps(4_000));
    let w2n = Rate::bps(w2.as_bps() * rng.uniform_range(1, 5) / 2).max(Rate::bps(4_000));
    sfq.try_set_weight(f1, w1n)
        .map_err(|e| format!("reconvergence SetWeight(f1) failed: {e}"))?;
    sfq.try_set_weight(f2, w2n)
        .map_err(|e| format!("reconvergence SetWeight(f2) failed: {e}"))?;
    // Settling: serve past the old-rate heads (one per flow; four
    // dequeues is twice the bound).
    for _ in 0..4 {
        sfq.dequeue(t);
    }
    // Fresh watermark window at the new weights (the soak pattern:
    // reset the metrics, refresh the registered weights so normalized
    // service uses the post-change rates).
    *metrics.borrow_mut() = FlowMetrics::new();
    sfq.add_flow(f1, w1n);
    sfq.add_flow(f2, w2n);
    for _ in 0..80 {
        sfq.dequeue(t);
    }
    debug_assert!(sfq.backlog(f1) > 0 && sfq.backlog(f2) > 0);
    let spread = metrics
        .borrow()
        .worst_spread_between(f1, f2)
        .unwrap_or(Ratio::ZERO);
    let bound = sfq_fairness_bound(l1, w1n, l2, w2n);
    if spread > bound {
        return Err(format!(
            "fairness did not reconverge after the weight change: spread {spread:?} \
             > bound {bound:?} over the post-settling window"
        ));
    }
    Ok((spread, bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn chaos_preset_passes_across_seeds() {
        for seed in 0..6u64 {
            let sc = Scenario::from_seed(Preset::Chaos, seed);
            let out =
                run_chaos_conformance(&sc).unwrap_or_else(|e| panic!("seed {seed} failed:\n{e}"));
            assert!(out.offered > 0, "seed {seed} generated an empty workload");
            assert!(out.kills > 0);
            assert_eq!(out.departures + out.refusals, out.offered);
            assert!(
                out.recovery_spread <= out.fairness_bound,
                "seed {seed}: reconvergence leg leaked through"
            );
        }
    }

    #[test]
    fn chaos_replay_line_round_trips() {
        let sc = Scenario::from_seed(Preset::Chaos, 11);
        assert!(sc.replay_line().contains("preset=chaos seed=11"));
        let back = Scenario::from_replay_line(&sc.replay_line()).expect("parse");
        assert_eq!(back.preset, Preset::Chaos);
        assert_eq!(format!("{back:?}"), format!("{sc:?}"));
    }
}
