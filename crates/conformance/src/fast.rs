//! Fixed-point fast-path conformance: the differential proof obligation
//! of `docs/fixed_point.md`, packaged as a seeded scenario check.
//!
//! A [`Preset::Fast`](crate::scenario::Preset::Fast) scenario is
//! *quantization-safe*: every weight is a power of two no larger than
//! `2^19` b/s, so every tag span `l / r` is exactly representable on
//! both the exact `i128` rational grid and the u64 fixed-point grid at
//! the default shift. On such workloads the fast schedulers are not
//! merely "close" to the exact ones — they must produce bit-identical
//! departure schedules, and any divergence (packet identity, service
//! start, or departure instant) is a bug in the fixed-point layer, not
//! a tolerance issue. This runner replays one scenario through both
//! pairs (`SfqFast` vs `Sfq`, `ScfqFast` vs `Scfq`) on identical
//! arrivals and server profiles; a failure message carries the first
//! divergence's minimized observer trace plus the
//! `conformance replay: preset=fast seed=N` line.
//!
//! Workloads that are *not* quantization-safe are deliberately out of
//! scope here: there the fast path is only boundedly close to exact
//! (the error-bound side is covered by `tests/fixed_point_identity.rs`
//! and the pinned small-shift witness).

use crate::diff::{diff_schedulers, SchedKind};
use crate::scenario::Scenario;

/// Successful fast-path differential run.
#[derive(Debug)]
pub struct FastOutcome {
    /// Departures compared across both scheduler pairs.
    pub compared: usize,
}

/// Replay `sc` through `SfqFast` vs exact `Sfq` and `ScfqFast` vs exact
/// `Scfq`; `Err` carries the rendered first divergence (replay line
/// included) of whichever pair disagrees first.
pub fn run_fast_conformance(sc: &Scenario) -> Result<FastOutcome, String> {
    let mut compared = 0;
    for (fast, exact) in [
        (SchedKind::SfqFast, SchedKind::Sfq),
        (SchedKind::ScfqFast, SchedKind::Scfq),
    ] {
        let rep = diff_schedulers(sc, exact, fast);
        if let Some(d) = rep.divergence {
            return Err(format!(
                "{} diverged from exact {} on a quantization-safe workload:\n{}",
                fast.name(),
                exact.name(),
                d.detail
            ));
        }
        compared += rep.compared;
    }
    Ok(FastOutcome { compared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn fast_preset_is_quantization_safe_by_construction() {
        for seed in 0..32u64 {
            let sc = Scenario::from_seed(Preset::Fast, seed);
            for f in &sc.flows {
                assert!(f.weight_bps.is_power_of_two(), "seed {seed}: {f:?}");
                assert!(f.weight_bps <= 1 << 19, "seed {seed}: {f:?}");
                assert!(f.weight_bps >= 1 << 14, "seed {seed}: {f:?}");
            }
            assert_eq!(sc.hops, 1);
            assert!(sc.droops.is_empty() && sc.churns.is_empty());
        }
    }

    #[test]
    fn fast_matches_exact_on_seeded_scenarios() {
        for seed in [1u64, 7, 42] {
            let sc = Scenario::from_seed(Preset::Fast, seed);
            let out = run_fast_conformance(&sc).unwrap_or_else(|d| panic!("seed {seed}:\n{d}"));
            assert!(out.compared > 0, "seed {seed} produced no departures");
        }
    }
}
