//! Differential oracle: run one scenario through two schedulers (or
//! one scheduler against an analytical bound from `crates/analysis`)
//! and report the *first* divergence as a minimized, human-readable
//! event trace assembled from the PR 2 observer layer.

use crate::exec::{faults_from, materialize_packets, register_flows, run_faulted};
use crate::faults::{effective_delta_bits, hop_profile};
use crate::scenario::{other_lmax_at, Scenario, OBSERVED_FLOW};
use analysis::{max_guarantee_violation, scfq_delay_term, sfq_delay_term};
use baselines::{Fifo, Scfq, VirtualClock};
use servers::Departure;
use sfq_core::{
    FairAirport, FifoBackend, ScfqFast, Scheduler, Sfq, SfqFast, TieBreak, DEFAULT_SHIFT,
};
use sfq_obs::RingTracer;
use simtime::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Scheduling disciplines the oracle can instantiate (all with a
/// ring tracer attached, so divergences come with context).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Start-time Fair Queueing (FIFO tie-break).
    Sfq,
    /// Self-Clocked Fair Queueing.
    Scfq,
    /// Virtual Clock.
    Vc,
    /// Fair Airport (Appendix B).
    FairAirport,
    /// FIFO — deliberately *not* fair; useful as a known-divergent peer.
    Fifo,
    /// Fixed-point SFQ fast path (u64 tags, FIFO tie-break).
    SfqFast,
    /// Fixed-point SCFQ fast path (u64 tags).
    ScfqFast,
    /// SFQ on the owned `FlowFifos` backend (the pooled path's oracle).
    SfqOwned,
    /// SCFQ on the owned backend.
    ScfqOwned,
    /// Fixed-point SFQ on the owned backend.
    SfqFastOwned,
    /// Fixed-point SCFQ on the owned backend.
    ScfqFastOwned,
}

impl SchedKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Sfq => "sfq",
            SchedKind::Scfq => "scfq",
            SchedKind::Vc => "vc",
            SchedKind::FairAirport => "fair-airport",
            SchedKind::Fifo => "fifo",
            SchedKind::SfqFast => "sfq-fast",
            SchedKind::ScfqFast => "scfq-fast",
            SchedKind::SfqOwned => "sfq-owned",
            SchedKind::ScfqOwned => "scfq-owned",
            SchedKind::SfqFastOwned => "sfq-fast-owned",
            SchedKind::ScfqFastOwned => "scfq-fast-owned",
        }
    }
}

/// Build a boxed scheduler of `kind` with a shared ring tracer
/// attached. The tracer handle stays readable after the run.
pub fn build_traced(
    kind: SchedKind,
    capacity: usize,
) -> (Box<dyn Scheduler>, Rc<RefCell<RingTracer>>) {
    let tracer = Rc::new(RefCell::new(RingTracer::with_capacity(capacity)));
    let sched: Box<dyn Scheduler> = match kind {
        SchedKind::Sfq => Box::new(Sfq::with_observer(TieBreak::Fifo, tracer.clone())),
        SchedKind::Scfq => Box::new(Scfq::with_observer(tracer.clone())),
        SchedKind::Vc => Box::new(VirtualClock::with_observer(tracer.clone())),
        SchedKind::FairAirport => Box::new(FairAirport::with_observer(tracer.clone())),
        SchedKind::Fifo => Box::new(Fifo::with_observer(tracer.clone())),
        SchedKind::SfqFast => Box::new(SfqFast::with_observer(TieBreak::Fifo, tracer.clone())),
        SchedKind::ScfqFast => Box::new(ScfqFast::with_observer(tracer.clone())),
        SchedKind::SfqOwned => Box::new(Sfq::with_parts(
            TieBreak::Fifo,
            tracer.clone(),
            FifoBackend::Owned,
        )),
        SchedKind::ScfqOwned => Box::new(Scfq::with_parts(tracer.clone(), FifoBackend::Owned)),
        SchedKind::SfqFastOwned => Box::new(
            SfqFast::with_parts(
                TieBreak::Fifo,
                DEFAULT_SHIFT,
                tracer.clone(),
                FifoBackend::Owned,
            )
            .unwrap_or_else(|e| panic!("default shift rejected: {e}")),
        ),
        SchedKind::ScfqFastOwned => Box::new(
            ScfqFast::with_parts(DEFAULT_SHIFT, tracer.clone(), FifoBackend::Owned)
                .unwrap_or_else(|e| panic!("default shift rejected: {e}")),
        ),
    };
    (sched, tracer)
}

/// One side of a differential run.
struct Side {
    name: &'static str,
    departures: Vec<Departure>,
    tracer: Rc<RefCell<RingTracer>>,
}

/// The first point where two runs disagree, with a minimized trace.
#[derive(Debug)]
pub struct Divergence {
    /// Index into the departure schedules.
    pub index: usize,
    /// Human-readable report: the disagreeing departures plus each
    /// side's observer events near the divergence, restricted to the
    /// implicated flows.
    pub detail: String,
}

/// Result of a differential run.
#[derive(Debug)]
pub struct DiffReport {
    /// Departures compared before divergence (or total, if none).
    pub compared: usize,
    /// First divergence, if the schedules disagree anywhere.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// True when both sides produced identical departure schedules.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Index of the first disagreement between two departure schedules
/// (packet identity, service start, or departure time), or the shorter
/// length if one is a strict prefix of the other. `None` if identical.
pub fn first_divergence(a: &[Departure], b: &[Departure]) -> Option<usize> {
    let n = a.len().min(b.len());
    for i in 0..n {
        let (x, y) = (&a[i], &b[i]);
        if x.pkt.uid != y.pkt.uid
            || x.service_start != y.service_start
            || x.departure != y.departure
        {
            return Some(i);
        }
    }
    (a.len() != b.len()).then_some(n)
}

fn fmt_departure(d: Option<&Departure>) -> String {
    match d {
        Some(d) => format!(
            "uid={} flow={} len={}B arr={:.6}s start={:.6}s dep={:.6}s",
            d.pkt.uid,
            d.pkt.flow.0,
            d.pkt.len.as_u64(),
            d.pkt.arrival.as_secs_f64(),
            d.service_start.as_secs_f64(),
            d.departure.as_secs_f64()
        ),
        None => "<schedule ended>".to_string(),
    }
}

fn render_side_trace(side: &Side, flows: &[u32], around: SimTime, window_s: f64) -> String {
    let t0 = around.as_secs_f64() - window_s;
    let t1 = around.as_secs_f64() + window_s;
    let tracer = side.tracer.borrow();
    let mut out = String::new();
    let mut shown = 0;
    for r in tracer.records() {
        if r.time_s < t0 || r.time_s > t1 {
            continue;
        }
        if !flows.is_empty() && !flows.contains(&r.flow) && r.flow != 0 {
            continue;
        }
        out.push_str(&format!(
            "    [{:<18}] t={:.6}s flow={} uid={} len={}B S={:.6} F={:.6} v={:.6}\n",
            r.kind.as_str(),
            r.time_s,
            r.flow,
            r.uid,
            r.len,
            r.start_tag,
            r.finish_tag,
            r.v
        ));
        shown += 1;
        if shown >= 24 {
            out.push_str("    ... (trace truncated)\n");
            break;
        }
    }
    if out.is_empty() {
        out.push_str("    (no retained events in window)\n");
    }
    out
}

fn render_divergence(sc: &Scenario, a: &Side, b: &Side, idx: usize) -> String {
    let da = a.departures.get(idx);
    let db = b.departures.get(idx);
    // Minimize: only the flows implicated at the divergence, in a
    // ±2 packet-transmission window around the earliest disagreeing
    // departure time.
    let mut flows: Vec<u32> = [da, db].iter().flatten().map(|d| d.pkt.flow.0).collect();
    flows.sort_unstable();
    flows.dedup();
    let around = [da, db]
        .iter()
        .flatten()
        .map(|d| d.departure)
        .min()
        .unwrap_or(SimTime::ZERO);
    let window_s = 2.0 * sc.link().tx_time(simtime::Bytes::new(500)).as_secs_f64() + 0.01;
    let mut out = String::new();
    out.push_str(&format!(
        "schedules diverge at departure #{idx} ({} vs {}):\n",
        a.name, b.name
    ));
    out.push_str(&format!("  {:<12}: {}\n", a.name, fmt_departure(da)));
    out.push_str(&format!("  {:<12}: {}\n", b.name, fmt_departure(db)));
    out.push_str(&format!("  {}\n", sc.replay_line()));
    out.push_str(&format!(
        "  trace {} (flows {:?}, ±{:.3}s):\n{}",
        a.name,
        flows,
        window_s,
        render_side_trace(a, &flows, around, window_s)
    ));
    out.push_str(&format!(
        "  trace {} (flows {:?}, ±{:.3}s):\n{}",
        b.name,
        flows,
        window_s,
        render_side_trace(b, &flows, around, window_s)
    ));
    out
}

fn run_side(sc: &Scenario, kind: SchedKind, horizon: SimTime) -> Side {
    let (mut sched, tracer) = build_traced(kind, 4_096);
    register_flows(sc, sched.as_mut());
    let profile = hop_profile(sc, 0, horizon);
    let arrivals = materialize_packets(sc);
    let faults = faults_from(sc);
    let rep = run_faulted(sched.as_mut(), &profile, &arrivals, &faults, horizon);
    Side {
        name: kind.name(),
        departures: rep.departures,
        tracer,
    }
}

/// Run a single-server scenario through two disciplines and report the
/// first divergence (identical fault schedule, arrivals, and server
/// profile on both sides).
pub fn diff_schedulers(sc: &Scenario, a: SchedKind, b: SchedKind) -> DiffReport {
    assert_eq!(sc.hops, 1, "differential oracle is single-server");
    // Drain slack: everything admitted by the horizon gets a chance to
    // depart before comparison cuts off.
    let horizon = sc.horizon() + SimDuration::from_secs(30);
    let sa = run_side(sc, a, horizon);
    let sb = run_side(sc, b, horizon);
    match first_divergence(&sa.departures, &sb.departures) {
        None => DiffReport {
            compared: sa.departures.len(),
            divergence: None,
        },
        Some(idx) => DiffReport {
            compared: idx,
            divergence: Some(Divergence {
                index: idx,
                detail: render_divergence(sc, &sa, &sb, idx),
            }),
        },
    }
}

/// Scheduler-vs-analytical-bound oracle: run `kind` on the scenario's
/// (possibly faulted) profile and measure the worst violation of its
/// own delay theorem for the observed flow. Droops are folded into the
/// effective δ. Supported for SFQ (Theorem 4) and SCFQ (Eq. 56);
/// returns `None` for disciplines without a transcribed bound.
pub struct BoundCheck {
    /// Worst violation (zero = theorem holds).
    pub violation: SimDuration,
    /// The delay term used.
    pub term: SimDuration,
    /// Replay line for the failure message.
    pub replay: String,
}

/// See [`BoundCheck`].
pub fn check_against_bound(sc: &Scenario, kind: SchedKind) -> Option<BoundCheck> {
    assert_eq!(sc.hops, 1, "bound oracle is single-server");
    let horizon = sc.horizon() + SimDuration::from_secs(30);
    let profile = hop_profile(sc, 0, horizon);
    let obs = sc.observed();
    let others = other_lmax_at(sc, 0, OBSERVED_FLOW);
    let term = match kind {
        SchedKind::Sfq => {
            let delta = effective_delta_bits(sc, &profile, horizon);
            sfq_delay_term(&others, obs.max_len(), sc.link(), delta)
        }
        SchedKind::Scfq => {
            if !matches!(sc.server, crate::scenario::ServerSpec::Constant) || !sc.droops.is_empty()
            {
                return None; // Eq. 56 is a constant-rate statement.
            }
            scfq_delay_term(&others, obs.max_len(), obs.weight(), sc.link())
        }
        _ => return None,
    };
    let side = run_side(sc, kind, horizon);
    let violation = max_guarantee_violation(&side.departures, OBSERVED_FLOW, obs.weight(), term);
    Some(BoundCheck {
        violation,
        term,
        replay: sc.replay_line(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;

    #[test]
    fn identical_kinds_never_diverge() {
        let sc = Scenario::from_seed(Preset::SingleFc, 14);
        let rep = diff_schedulers(&sc, SchedKind::Sfq, SchedKind::Sfq);
        assert!(rep.identical(), "{:?}", rep.divergence.map(|d| d.detail));
        assert!(rep.compared > 0, "scenario produced no departures");
    }

    #[test]
    fn sfq_vs_fifo_diverges_with_readable_report() {
        // A scenario with weighted flows: FIFO ignores weights, so the
        // schedules must part ways, and the report must carry the
        // replay line plus both traces.
        let mut seed = 3u64;
        let rep = loop {
            let sc = Scenario::from_seed(Preset::SingleFc, seed);
            let rep = diff_schedulers(&sc, SchedKind::Sfq, SchedKind::Fifo);
            if rep.divergence.is_some() {
                break rep;
            }
            seed += 1;
            assert!(seed < 20, "no divergence found in 17 seeds");
        };
        let d = rep.divergence.expect("diverged");
        assert!(d.detail.contains("conformance replay: preset=single-fc"));
        assert!(d.detail.contains("trace sfq"));
        assert!(d.detail.contains("trace fifo"));
        assert!(d.detail.contains("schedules diverge at departure"));
    }

    #[test]
    fn sfq_bound_oracle_holds_under_faults() {
        for seed in [1u64, 8, 33] {
            let sc = Scenario::from_seed(Preset::SingleFc, seed);
            let check = check_against_bound(&sc, SchedKind::Sfq).expect("sfq bound");
            assert_eq!(
                check.violation,
                SimDuration::ZERO,
                "Theorem 4 violated by {:?}\n  {}",
                check.violation,
                check.replay
            );
        }
    }
}
