//! Scenario DSL: a compact, fully-deterministic description of a
//! conformance run — flows, rates, packet-size distributions, the
//! server profile (constant / FC / EBF), and a fault-injection schedule
//! (capacity droop, flow churn) — generated from a `(preset, seed)`
//! pair and replayable from a single printed line.
//!
//! Everything downstream (the executors in [`crate::exec`] and
//! [`crate::e2e`], the differential oracle in [`crate::diff`]) consumes
//! only this structure, so a failure anywhere in the harness is
//! reproduced exactly by `Scenario::from_replay_line(..)`.

use des::SimRng;
use sfq_core::FlowId;
use simtime::{Bytes, Rate, SimDuration, SimTime};
use traffic::{arrivals_until, LeakyBucket, PoissonSource};

/// The flow every delay/throughput conformance check observes.
pub const OBSERVED_FLOW: FlowId = FlowId(1);

/// A named generation recipe. The preset picks the *shape* of the
/// scenario (topology, server class, which faults are eligible); the
/// seed picks everything quantitative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// One FC server, mixed CBR/Poisson flows, droop + churn faults.
    SingleFc,
    /// One EBF server, CBR flows, no deterministic faults (the server
    /// profile itself is the stochastic perturbation).
    SingleEbf,
    /// A tandem of 2–5 FC servers with per-hop cross traffic — the
    /// Theorem 6 / Corollary 1 setting, with droop, churn, and
    /// buffer-cap faults.
    Tandem,
    /// Two-flow Fair Airport workload (Theorems 8/9): one flow bursts
    /// alone, then both stay backlogged.
    FairAirport,
    /// Long-horizon overload soak: a deliberately overbooked single hop
    /// with tight buffer caps, a randomized drop policy, and mid-run
    /// churn + revive — the graceful-degradation / recovery preset (see
    /// `docs/robustness.md`).
    Soak,
    /// Sharded-engine differential: a mixed flow population whose
    /// packets are replayed as an identical ingest/pump/drain call
    /// schedule against `sfq_engine::SyncEngine` (the deterministic
    /// oracle) and `sfq_engine::ThreadedEngine`; any divergence in
    /// departures or backpressure refusals under real thread
    /// interleavings is a conformance failure (see [`crate::engine`]).
    Engine,
    /// Fixed-point fast-path differential: a quantization-safe
    /// workload — every weight an exact power of two no larger than
    /// `2^19` b/s, so every tag span is exactly representable in both
    /// the `i128` rationals and the u64 fixed-point grid — replayed
    /// against `SfqFast` vs exact `Sfq` and `ScfqFast` vs exact `Scfq`;
    /// any departure divergence is a conformance failure (see
    /// [`crate::fast`]).
    Fast,
    /// Pooled-backend differential: a mixed-weight workload with flow
    /// churn (force-remove + revive) replayed through each scheduler
    /// on the pooled `FlowFifos` backend vs the same scheduler on the
    /// owned backend. The two backends run identical tag arithmetic,
    /// so — unlike `fast` — identity is unconditional: any divergence
    /// in departures is a bug in the slab pool, intrusive links, or
    /// generation-checked flow table (see [`crate::pool`]).
    Pool,
    /// Control-plane chaos: the [`Preset::Engine`] workload shape with
    /// a seeded schedule of live reconfigurations (`SetWeight` under
    /// the leaf tag-rewrite rule) and injected worker kills woven into
    /// the ingest/pump/drain call stream. The chaos runner checks (a)
    /// reconfig-only sync-vs-threaded identity, with a *no-op*
    /// reconfiguration schedule additionally proven bit-identical to
    /// an unreconfigured oracle on both drivers, (b) packet
    /// conservation, no-global-stall, and post-recovery liveness under
    /// seeded worker kills for every `RecoveryPolicy`, and (c)
    /// post-reconfiguration fairness reconvergence against the
    /// Theorem 1 bound at the new weights (see [`crate::chaos`]).
    Chaos,
    /// Telemetry-plane differential: the [`Preset::Engine`] workload
    /// shape replayed with per-shard counter pages attached, under a
    /// seeded schedule of ingest chunks, pumps, partial drains, flow
    /// churn (force-remove + revive), and — on the chaos leg — injected
    /// worker kills. The runner checks the pages against a driver-side
    /// ledger (offered == departures + refusals + drops as read purely
    /// from the pages), proves the seqlock snapshot retry terminates
    /// under live writers, and requires the sync and threaded drivers
    /// to produce bit-identical pages for the same call schedule (see
    /// [`crate::telemetry`]).
    Telemetry,
    /// Multi-port forwarding graph: a chain of 2–5 scheduler ports
    /// with *shared* intermediate ports — unlike [`Preset::Tandem`],
    /// whose cross traffic is hop-local, cross flows here span
    /// multi-hop sub-paths, so intermediate ports see genuine fan-in
    /// from flows that entered at different ingress points. The graph
    /// runner builds the scenario as a `graph::GraphSpec::chain`,
    /// polices a deterministic subset of cross flows, checks Theorem 6
    /// along every flow's path plus Corollary 1 for the shaped
    /// observed flow, proves the threaded-port build identical to the
    /// sync-oracle build, and audits the packet-arena books (see
    /// [`crate::graph`]).
    Graph,
}

impl Preset {
    /// Every preset, for fuzz drivers.
    pub const ALL: [Preset; 11] = [
        Preset::SingleFc,
        Preset::SingleEbf,
        Preset::Tandem,
        Preset::FairAirport,
        Preset::Soak,
        Preset::Engine,
        Preset::Fast,
        Preset::Pool,
        Preset::Chaos,
        Preset::Telemetry,
        Preset::Graph,
    ];

    /// Stable name used in replay lines.
    pub fn name(self) -> &'static str {
        match self {
            Preset::SingleFc => "single-fc",
            Preset::SingleEbf => "single-ebf",
            Preset::Tandem => "tandem",
            Preset::FairAirport => "fair-airport",
            Preset::Soak => "soak",
            Preset::Engine => "engine",
            Preset::Fast => "fast",
            Preset::Pool => "pool",
            Preset::Chaos => "chaos",
            Preset::Telemetry => "telemetry",
            Preset::Graph => "graph",
        }
    }

    /// Inverse of [`Preset::name`].
    pub fn from_name(s: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Packet-size distribution of one flow. Sizes are drawn per packet
/// from the flow's forked RNG stream; [`SizeDist::max_bytes`] is the
/// `l^max` every analytical bound uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeDist {
    /// Every packet exactly this many bytes.
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform(u64, u64),
    /// Either `small` or `large`, 50/50.
    Bimodal(u64, u64),
}

impl SizeDist {
    /// Largest size the distribution can produce (`l^max`).
    pub fn max_bytes(self) -> u64 {
        match self {
            SizeDist::Fixed(l) => l,
            SizeDist::Uniform(_, hi) => hi,
            SizeDist::Bimodal(_, large) => large,
        }
    }

    fn draw(self, rng: &mut SimRng) -> u64 {
        match self {
            SizeDist::Fixed(l) => l,
            SizeDist::Uniform(lo, hi) => rng.uniform_range(lo, hi + 1),
            SizeDist::Bimodal(small, large) => {
                if rng.uniform() < 0.5 {
                    small
                } else {
                    large
                }
            }
        }
    }
}

/// How a flow's arrival process is generated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Constant bit rate at the flow's reserved weight: one packet of
    /// (up to) `l^max` every `l^max / weight`, so the flow always
    /// conforms to its reservation.
    Cbr,
    /// Poisson arrivals averaging the reserved weight.
    Poisson,
    /// Poisson at the reserved weight, shaped through a
    /// `(σ, ρ)` leaky bucket with `σ = sigma_pkts · l^max` — the
    /// Corollary 1 conforming flow. Packet sizes are fixed at `l^max`.
    ShapedPoisson {
        /// Bucket depth in packets.
        sigma_pkts: u32,
    },
    /// Back-to-back bursts: `count` packets at each listed instant
    /// (milliseconds). The Fair Airport phase workload.
    Bursts(Vec<(u64, u32)>),
}

/// One flow of a scenario.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Flow id (`OBSERVED_FLOW` is the checked flow).
    pub id: u32,
    /// Reserved rate `r_f` in b/s.
    pub weight_bps: u64,
    /// Packet-size distribution.
    pub size: SizeDist,
    /// Arrival process.
    pub source: SourceKind,
    /// Source start offset, milliseconds.
    pub start_ms: u64,
    /// First hop the flow traverses (inclusive).
    pub entry: usize,
    /// Last hop the flow traverses (inclusive).
    pub exit: usize,
}

impl FlowSpec {
    /// `l^max` as [`Bytes`].
    pub fn max_len(&self) -> Bytes {
        Bytes::new(self.size.max_bytes())
    }

    /// Reserved rate as [`Rate`].
    pub fn weight(&self) -> Rate {
        Rate::bps(self.weight_bps)
    }
}

/// Server class of every hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerSpec {
    /// Constant rate `C` (FC with `δ = 0`).
    Constant,
    /// Fluctuation Constrained `(C, δ)` via the exact on–off builder.
    Fc {
        /// Burstiness `δ(C)` in bits.
        delta_bits: u64,
    },
    /// Exponentially Bounded Fluctuation via the randomized catch-up
    /// builder (slotted idle/catch-up with exponential idle gaps).
    Ebf {
        /// Slot length, milliseconds.
        slot_ms: u64,
        /// Mean idle gap per slot, milliseconds.
        mean_gap_ms: u64,
    },
}

/// A capacity-droop fault: hop `hop` runs at `percent`% of nominal
/// over `[at_ms, at_ms + dur_ms)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Droop {
    /// Target hop index.
    pub hop: usize,
    /// Window start, milliseconds.
    pub at_ms: u64,
    /// Window length, milliseconds.
    pub dur_ms: u64,
    /// Remaining capacity, percent (0 = full outage).
    pub percent: u32,
}

/// Buffer overflow response of every hop. Mirrors `netsim::DropPolicy`
/// without importing it, so the DSL stays consumer-agnostic; the
/// executors map it onto the switch policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DropKind {
    /// Refuse the arriving packet.
    #[default]
    Tail,
    /// Evict the arriving flow's oldest queued packet.
    Head,
    /// On shared-cap overflow, evict the head of the flow with the
    /// largest `backlog/weight` pressure.
    Lwp,
}

/// A flow-churn fault: force-remove `flow` (discarding its backlog at
/// every hop it traverses) at `at_ms`; optionally re-register it at
/// `revive_ms` (single-server executor only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Churn {
    /// Flow to remove.
    pub flow: u32,
    /// Removal instant, milliseconds.
    pub at_ms: u64,
    /// Optional re-registration instant, milliseconds.
    pub revive_ms: Option<u64>,
}

/// A complete, self-contained conformance scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Generation recipe.
    pub preset: Preset,
    /// Generation seed (with `preset`, determines everything below).
    pub seed: u64,
    /// Nominal link rate `C` of every hop, b/s.
    pub link_bps: u64,
    /// Server class of every hop.
    pub server: ServerSpec,
    /// Number of hops (1 for the single-server presets).
    pub hops: usize,
    /// Inter-hop propagation delay `τ`, milliseconds.
    pub prop_ms: u64,
    /// Arrival horizon, milliseconds (runs extend past it to drain).
    pub horizon_ms: u64,
    /// Per-flow buffer cap at every hop (`None` = unbounded).
    pub per_flow_cap: Option<usize>,
    /// Shared (all-flow) buffer cap at every hop (`None` = unbounded).
    pub shared_cap: Option<usize>,
    /// Buffer overflow response at every hop.
    pub drop_policy: DropKind,
    /// Fairness-recovery measurement point, milliseconds: the instant
    /// (mid drain gap, after the overload phase) at which the soak
    /// runner opens a fresh watermark window. `None` for presets
    /// without a recovery phase.
    pub recovery_at_ms: Option<u64>,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Capacity-droop faults.
    pub droops: Vec<Droop>,
    /// Flow-churn faults.
    pub churns: Vec<Churn>,
}

impl Scenario {
    /// Deterministically generate the scenario for `(preset, seed)`.
    pub fn from_seed(preset: Preset, seed: u64) -> Scenario {
        let mut rng = SimRng::new(seed ^ SEED_DOMAIN);
        match preset {
            Preset::Tandem => gen_tandem(seed, &mut rng),
            Preset::SingleFc => gen_single_fc(seed, &mut rng),
            Preset::SingleEbf => gen_single_ebf(seed, &mut rng),
            Preset::FairAirport => gen_fair_airport(seed, &mut rng),
            Preset::Soak => gen_soak(seed, &mut rng),
            Preset::Engine => gen_engine(seed, &mut rng),
            Preset::Fast => gen_fast(seed, &mut rng),
            Preset::Pool => gen_pool(seed, &mut rng),
            Preset::Chaos => gen_chaos(seed, &mut rng),
            Preset::Telemetry => gen_telemetry(seed, &mut rng),
            Preset::Graph => gen_graph(seed, &mut rng),
        }
    }

    /// The single line that reproduces this scenario.
    pub fn replay_line(&self) -> String {
        format!(
            "conformance replay: preset={} seed={}",
            self.preset.name(),
            self.seed
        )
    }

    /// Rebuild a scenario from a replay line (whitespace-tolerant;
    /// ignores any surrounding text, so a whole failure message can be
    /// pasted back in).
    pub fn from_replay_line(line: &str) -> Option<Scenario> {
        let mut preset = None;
        let mut seed = None;
        for tok in line.split_whitespace() {
            if let Some(p) = tok.strip_prefix("preset=") {
                preset = Preset::from_name(p);
            } else if let Some(s) = tok.strip_prefix("seed=") {
                seed = s.parse::<u64>().ok();
            }
        }
        Some(Scenario::from_seed(preset?, seed?))
    }

    /// Arrival horizon as [`SimTime`].
    pub fn horizon(&self) -> SimTime {
        SimTime::from_millis(self.horizon_ms as i128)
    }

    /// Inter-hop propagation delay as [`SimDuration`].
    pub fn prop(&self) -> SimDuration {
        SimDuration::from_millis(self.prop_ms as i128)
    }

    /// Nominal link rate as [`Rate`].
    pub fn link(&self) -> Rate {
        Rate::bps(self.link_bps)
    }

    /// The spec of `flow`, if any.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowSpec> {
        self.flows.iter().find(|f| f.id == flow.0)
    }

    /// The observed flow's spec (every preset generates one).
    pub fn observed(&self) -> &FlowSpec {
        self.flow(OBSERVED_FLOW).expect("observed flow generated")
    }

    /// Materialize one flow's arrival sequence `(time, len)` up to the
    /// horizon. Deterministic: the RNG stream is forked from the
    /// scenario seed and the flow id only, so arrivals do not depend on
    /// evaluation order.
    pub fn arrivals_for(&self, f: &FlowSpec) -> Vec<(SimTime, Bytes)> {
        let mut rng = SimRng::new(self.seed).fork(0xF10F ^ f.id as u64);
        let start = SimTime::from_millis(f.start_ms as i128);
        let horizon = self.horizon();
        let lmax = f.max_len();
        match &f.source {
            SourceKind::Cbr => {
                // One (possibly shorter) packet per l^max-sized slot:
                // never exceeds the reservation.
                let interval = f.weight().tx_time(lmax);
                let mut out = Vec::new();
                let mut t = start;
                while t <= horizon {
                    out.push((t, Bytes::new(f.size.draw(&mut rng))));
                    t += interval;
                }
                out
            }
            SourceKind::Poisson => {
                let mean = f.weight().tx_time(lmax);
                let mut out = Vec::new();
                let mut t = start + rng.exp_duration(mean);
                while t <= horizon {
                    out.push((t, Bytes::new(f.size.draw(&mut rng))));
                    t += rng.exp_duration(mean);
                }
                out
            }
            SourceKind::ShapedPoisson { sigma_pkts } => {
                let raw = arrivals_until(
                    PoissonSource::with_rate(start, f.weight(), lmax, rng),
                    horizon,
                );
                let sigma_bits = *sigma_pkts as u64 * lmax.bits();
                LeakyBucket::new(sigma_bits, f.weight()).shape(&raw)
            }
            SourceKind::Bursts(phases) => {
                let mut out = Vec::new();
                for &(at_ms, count) in phases {
                    let t = SimTime::from_millis(at_ms as i128);
                    for _ in 0..count {
                        out.push((t, Bytes::new(f.size.draw(&mut rng))));
                    }
                }
                out
            }
        }
    }
}

/// Domain separator so conformance seeds never collide with other
/// users of `SimRng::new(seed)` on the same numeric seed.
const SEED_DOMAIN: u64 = 0xC04F_0443;

/// `l^max` of every flow at `hop` except `flow` — the "other flows"
/// vector the per-hop SFQ β term takes.
pub fn other_lmax_at(sc: &Scenario, hop: usize, flow: FlowId) -> Vec<Bytes> {
    sc.flows
        .iter()
        .filter(|f| f.id != flow.0 && f.entry <= hop && hop <= f.exit)
        .map(|f| f.max_len())
        .collect()
}

fn pick_size(rng: &mut SimRng, max_hint: u64) -> SizeDist {
    match rng.uniform_range(0, 3) {
        0 => SizeDist::Fixed(rng.uniform_range(100, max_hint + 1)),
        1 => {
            let hi = rng.uniform_range(200, max_hint + 1);
            SizeDist::Uniform(rng.uniform_range(64, hi), hi)
        }
        _ => {
            let large = rng.uniform_range(250, max_hint + 1);
            SizeDist::Bimodal(rng.uniform_range(64, 200), large)
        }
    }
}

fn gen_tandem(seed: u64, rng: &mut SimRng) -> Scenario {
    let hops = rng.uniform_range(2, 6) as usize;
    let link_bps = 1_000_000u64;
    let prop_ms = rng.uniform_range(1, 5);
    let horizon_ms = rng.uniform_range(6, 13) * 1_000;
    let delta_bits = rng.uniform_range(0, 4) * 4_000;
    let server = if delta_bits == 0 {
        ServerSpec::Constant
    } else {
        ServerSpec::Fc { delta_bits }
    };

    let mut flows = Vec::new();
    // Observed flow: (σ, ρ)-shaped, fixed-size packets, full path.
    let rho = 1_000 * rng.uniform_range(32, 97);
    let obs_len = 50 * rng.uniform_range(2, 9);
    flows.push(FlowSpec {
        id: OBSERVED_FLOW.0,
        weight_bps: rho,
        size: SizeDist::Fixed(obs_len),
        source: SourceKind::ShapedPoisson {
            sigma_pkts: rng.uniform_range(1, 6) as u32,
        },
        start_ms: 0,
        entry: 0,
        exit: hops - 1,
    });
    // Fresh cross traffic at every hop, each flow local to its hop.
    // Admission: ρ + Σ cross <= 90% of C at every hop.
    let budget = link_bps * 9 / 10 - rho;
    for h in 0..hops {
        let n_cross = rng.uniform_range(2, 5);
        for i in 0..n_cross {
            let share = budget / n_cross;
            let w = share * rng.uniform_range(60, 101) / 100;
            flows.push(FlowSpec {
                id: 100 * (h as u32 + 1) + i as u32,
                weight_bps: w.max(10_000),
                size: pick_size(rng, 500),
                source: if rng.uniform() < 0.5 {
                    SourceKind::Cbr
                } else {
                    SourceKind::Poisson
                },
                start_ms: rng.uniform_range(0, 20),
                entry: h,
                exit: h,
            });
        }
    }

    // Faults. Droops are folded into the per-hop effective δ by the
    // checker, so the bound stays exact; churn only ever hits cross
    // flows (removing the observed flow would vacate the property).
    let mut droops = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        droops.push(Droop {
            hop: rng.uniform_range(0, hops as u64) as usize,
            at_ms: rng.uniform_range(horizon_ms / 4, horizon_ms / 2),
            dur_ms: rng.uniform_range(100, 401),
            percent: rng.uniform_range(40, 91) as u32,
        });
    }
    let cross_ids: Vec<u32> = flows.iter().skip(1).map(|f| f.id).collect();
    let mut churns = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        let victim = cross_ids[rng.uniform_range(0, cross_ids.len() as u64) as usize];
        if churns.iter().any(|c: &Churn| c.flow == victim) {
            continue;
        }
        churns.push(Churn {
            flow: victim,
            at_ms: rng.uniform_range(horizon_ms / 3, 2 * horizon_ms / 3),
            revive_ms: None,
        });
    }
    // Small caps on purpose: admitted traffic keeps queues short, so
    // only a tight cap (a few packets beyond a flow's burst) actually
    // exercises the drop path during droops and Poisson bursts.
    let per_flow_cap = if rng.uniform() < 0.5 {
        None
    } else {
        Some(rng.uniform_range(4, 25) as usize)
    };

    Scenario {
        preset: Preset::Tandem,
        seed,
        link_bps,
        server,
        hops,
        prop_ms,
        horizon_ms,
        per_flow_cap,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops,
        churns,
    }
}

fn gen_single_fc(seed: u64, rng: &mut SimRng) -> Scenario {
    let link_bps = 100_000u64;
    let horizon_ms = rng.uniform_range(20, 41) * 1_000;
    let delta_bits = rng.uniform_range(0, 3) * 5_000;
    let server = if delta_bits == 0 {
        ServerSpec::Constant
    } else {
        ServerSpec::Fc { delta_bits }
    };
    let n = rng.uniform_range(3, 7);
    let budget = link_bps * 95 / 100;
    let mut flows = Vec::new();
    for i in 0..n {
        let share = budget / n;
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: (share * rng.uniform_range(50, 101) / 100).max(2_000),
            size: pick_size(rng, 900),
            source: if rng.uniform() < 0.6 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, 50),
            entry: 0,
            exit: 0,
        });
    }
    let mut droops = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        droops.push(Droop {
            hop: 0,
            at_ms: rng.uniform_range(horizon_ms / 4, horizon_ms / 2),
            dur_ms: rng.uniform_range(200, 1_001),
            percent: rng.uniform_range(30, 91) as u32,
        });
    }
    // Churn any non-observed flow; sometimes revive it later.
    let mut churns = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        let victim = 2 + rng.uniform_range(0, n - 1) as u32;
        if churns.iter().any(|c: &Churn| c.flow == victim) {
            continue;
        }
        let at_ms = rng.uniform_range(horizon_ms / 3, 2 * horizon_ms / 3);
        let revive_ms = if rng.uniform() < 0.5 {
            Some(at_ms + rng.uniform_range(500, 3_001))
        } else {
            None
        };
        churns.push(Churn {
            flow: victim,
            at_ms,
            revive_ms,
        });
    }
    Scenario {
        preset: Preset::SingleFc,
        seed,
        link_bps,
        server,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops,
        churns,
    }
}

fn gen_single_ebf(seed: u64, rng: &mut SimRng) -> Scenario {
    let link_bps = 100_000u64;
    let horizon_ms = rng.uniform_range(20, 41) * 1_000;
    let server = ServerSpec::Ebf {
        slot_ms: 100,
        mean_gap_ms: rng.uniform_range(5, 21),
    };
    let n = rng.uniform_range(2, 5);
    let budget = link_bps * 9 / 10;
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: (budget / n * rng.uniform_range(60, 101) / 100).max(2_000),
            size: SizeDist::Fixed(rng.uniform_range(100, 501)),
            source: SourceKind::Cbr,
            start_ms: rng.uniform_range(0, 20),
            entry: 0,
            exit: 0,
        });
    }
    Scenario {
        preset: Preset::SingleEbf,
        seed,
        link_bps,
        server,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_fair_airport(seed: u64, rng: &mut SimRng) -> Scenario {
    // Two equal flows at half the link each; flow 1 bursts alone, then
    // both stay backlogged — the "punished for using idle bandwidth"
    // workload of Appendix B, with randomized burst sizes.
    let link_bps = 2_000u64;
    let weight = 1_000u64;
    let len = 250u64; // 2000 bits: 1 s at link, 2 s at weight.
    let n1 = rng.uniform_range(10, 31) as u32;
    let n2 = rng.uniform_range(20, 51) as u32;
    // Phase 1 drains at the full link: n1 packets × 1 s each.
    let phase2_ms = n1 as u64 * 1_000;
    // Phase 2 drains at fair shares: n2 packets × 2 s each, plus slack.
    let horizon_ms = phase2_ms + n2 as u64 * 2_000 + 10_000;
    let delta_bits = if rng.uniform() < 0.5 { 0 } else { 2_000 };
    let server = if delta_bits == 0 {
        ServerSpec::Constant
    } else {
        ServerSpec::Fc { delta_bits }
    };
    let flows = vec![
        FlowSpec {
            id: 1,
            weight_bps: weight,
            size: SizeDist::Fixed(len),
            source: SourceKind::Bursts(vec![(0, n1), (phase2_ms, n2)]),
            start_ms: 0,
            entry: 0,
            exit: 0,
        },
        FlowSpec {
            id: 2,
            weight_bps: weight,
            size: SizeDist::Fixed(len),
            source: SourceKind::Bursts(vec![(phase2_ms, n2)]),
            start_ms: 0,
            entry: 0,
            exit: 0,
        },
    ];
    Scenario {
        preset: Preset::FairAirport,
        seed,
        link_bps,
        server,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_soak(seed: u64, rng: &mut SimRng) -> Scenario {
    // Deliberately overbooked single hop in two phases.
    //
    // Phase A (the first ~60% of the horizon): two heavy flows offer
    // deterministic burst trains that jointly exceed the link (plus a
    // CBR cross flow), so the tight buffer caps shed load under the
    // scenario's drop policy the whole phase, and the cross flow is
    // churned and revived mid-overload. Under head-drop/LWP the evicted
    // packets' tag spans stay charged to their flows, so *delivered*
    // service fairness is intentionally sacrificed here.
    //
    // Phase B (after a drain gap): both heavy flows switch to a gentle
    // synchronized probe train that keeps them simultaneously
    // backlogged without ever reaching a cap. Once the overload backlog
    // drains and the busy period ends, SFQ's start-at-v rule forgives
    // the accumulated charge — so a fresh fairness watermark opened at
    // `recovery_at_ms` must come back under the Theorem 1 bound. That
    // is the recovery invariant the soak exists to check.
    let link_bps = 100_000u64;
    let horizon_ms = rng.uniform_range(30, 61) * 1_000;
    let overload_end_ms = horizon_ms * 6 / 10;
    let probe_start_ms = overload_end_ms + 3_000;
    let len = 250u64; // 2000 bits per packet

    let mut flows = Vec::new();
    for id in 1..=2u32 {
        // 13–18 packets every 500 ms = 52–72 kb/s per flow: the pair
        // always offers >= 104 kb/s, overbooking the 100 kb/s link
        // before the cross flow is even counted.
        let c = rng.uniform_range(13, 19) as u32;
        let mut phases = Vec::new();
        let mut t = rng.uniform_range(0, 100);
        while t < overload_end_ms {
            phases.push((t, c));
            t += 500;
        }
        // Probe train: 3-packet bursts (below every cap) at instants
        // shared by both flows, so both are backlogged while each
        // burst drains.
        let mut t = probe_start_ms;
        while t + 2_000 <= horizon_ms {
            phases.push((t, 3));
            t += 2_000;
        }
        flows.push(FlowSpec {
            id,
            weight_bps: 4_000 * c as u64, // reserve exactly the offered rate
            size: SizeDist::Fixed(len),
            source: SourceKind::Bursts(phases),
            start_ms: 0,
            entry: 0,
            exit: 0,
        });
    }
    flows.push(FlowSpec {
        id: 3,
        weight_bps: link_bps / 10,
        size: SizeDist::Fixed(len),
        source: SourceKind::Cbr,
        start_ms: 0,
        entry: 0,
        exit: 0,
    });
    let at_ms = rng.uniform_range(overload_end_ms / 3, overload_end_ms / 2);
    let churns = vec![Churn {
        flow: 3,
        at_ms,
        revive_ms: Some(at_ms + rng.uniform_range(2_000, 4_001)),
    }];
    let drop_policy = match rng.uniform_range(0, 3) {
        0 => DropKind::Tail,
        1 => DropKind::Head,
        _ => DropKind::Lwp,
    };
    let per_flow_cap = rng.uniform_range(4, 9) as usize;
    let shared_cap = per_flow_cap * 2 + rng.uniform_range(2, 7) as usize;
    Scenario {
        preset: Preset::Soak,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: Some(per_flow_cap),
        shared_cap: Some(shared_cap),
        drop_policy,
        recovery_at_ms: Some(overload_end_ms + 1_500),
        flows,
        droops: Vec::new(),
        churns,
    }
}

fn gen_engine(seed: u64, rng: &mut SimRng) -> Scenario {
    // The engine runner replays these flows' packets as an explicit
    // ingest/pump/drain call schedule (derived from the same seed, see
    // `crate::engine`), so no server profile or fault schedule applies:
    // the scenario only fixes the flow population and arrival horizon.
    // Short horizons keep a single case cheap; the fuzz driver covers
    // breadth with many seeds.
    let link_bps = 1_000_000u64;
    let horizon_ms = rng.uniform_range(200, 801);
    let n = rng.uniform_range(6, 33);
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: (link_bps / n * rng.uniform_range(20, 101) / 100).max(4_000),
            size: pick_size(rng, 1_200),
            source: if rng.uniform() < 0.7 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, horizon_ms / 2),
            entry: 0,
            exit: 0,
        });
    }
    Scenario {
        preset: Preset::Engine,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_chaos(seed: u64, rng: &mut SimRng) -> Scenario {
    // Chaos runs replay the flow population through *six* engine
    // instances (plain/no-op/real-reconfig oracles and their threaded
    // counterparts, plus the kill run), so the population and horizon
    // are kept a notch smaller than `engine`'s; the reconfiguration and
    // kill schedule itself is derived by the runner from the same seed
    // under `crate::chaos::CHAOS_DOMAIN`.
    let link_bps = 1_000_000u64;
    let horizon_ms = rng.uniform_range(150, 501);
    let n = rng.uniform_range(4, 17);
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: (link_bps / n * rng.uniform_range(20, 101) / 100).max(4_000),
            size: pick_size(rng, 1_200),
            source: if rng.uniform() < 0.7 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, horizon_ms / 2),
            entry: 0,
            exit: 0,
        });
    }
    Scenario {
        preset: Preset::Chaos,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_telemetry(seed: u64, rng: &mut SimRng) -> Scenario {
    // Telemetry runs replay the flow population through three engine
    // instances (sync, threaded, threaded + kills), each with counter
    // pages attached and a snapshot taken after every operation, so
    // the population stays a notch smaller than `engine`'s; the
    // operational schedule (churn, kills, snapshots) is derived by the
    // runner from the same seed under `crate::telemetry::
    // TELEMETRY_DOMAIN`.
    let link_bps = 1_000_000u64;
    let horizon_ms = rng.uniform_range(150, 451);
    let n = rng.uniform_range(4, 13);
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: (link_bps / n * rng.uniform_range(20, 101) / 100).max(4_000),
            size: pick_size(rng, 1_200),
            source: if rng.uniform() < 0.7 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, horizon_ms / 2),
            entry: 0,
            exit: 0,
        });
    }
    Scenario {
        preset: Preset::Telemetry,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_fast(seed: u64, rng: &mut SimRng) -> Scenario {
    // Quantization-safe by construction: every weight is 2^k b/s with
    // 14 <= k <= 19. With the fixed-point shift at 24 (`sfq_core::
    // DEFAULT_SHIFT`), a span `l / 2^k` lands exactly on the 2^-24
    // grid, and on the exact side every tag denominator divides 2^19 —
    // far below the pico-snap threshold — so fast and exact schedulers
    // must produce *bit-identical* dequeue orders (see
    // `docs/fixed_point.md`). The flow population may overbook the
    // link: buffers are uncapped, and a deep standing backlog is
    // exactly what stresses the fixed-point heap path.
    let link_bps = 4_000_000u64;
    let horizon_ms = rng.uniform_range(300, 1_201);
    let n = rng.uniform_range(4, 17);
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: 1u64 << rng.uniform_range(14, 20),
            size: pick_size(rng, 1_000),
            source: if rng.uniform() < 0.6 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, horizon_ms / 2),
            entry: 0,
            exit: 0,
        });
    }
    Scenario {
        preset: Preset::Fast,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns: Vec::new(),
    }
}

fn gen_pool(seed: u64, rng: &mut SimRng) -> Scenario {
    // Pooled-vs-owned backend differential. Identity is unconditional
    // (same tag arithmetic on both sides), so the weights are
    // deliberately *arbitrary* — no quantization-safety constraint —
    // and the workload includes flow churn with revival, the path that
    // exercises the pooled backend's generation-checked flow table
    // (stale heap entries for a removed flow, slot reuse by a revived
    // or fresh flow). Modest overbooking keeps per-flow FIFOs deep so
    // the intrusive-link walk, not just the heap, is on the hot path.
    let link_bps = 1_000_000u64;
    let horizon_ms = rng.uniform_range(300, 1_001);
    let n = rng.uniform_range(4, 13);
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(FlowSpec {
            id: i as u32 + 1,
            weight_bps: rng.uniform_range(500, 400_000),
            size: pick_size(rng, 1_500),
            source: if rng.uniform() < 0.6 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, horizon_ms / 2),
            entry: 0,
            exit: 0,
        });
    }
    // Churn one or two mid-population flows; revive roughly half.
    let n_churn = rng.uniform_range(1, 3);
    let mut churns = Vec::new();
    for c in 0..n_churn {
        let flow = rng.uniform_range(1, n + 1) as u32;
        if churns.iter().any(|ch: &Churn| ch.flow == flow) {
            continue;
        }
        let at_ms = rng.uniform_range(horizon_ms / 4, horizon_ms * 3 / 4);
        let revive_ms = if c % 2 == 0 {
            Some(at_ms + rng.uniform_range(50, horizon_ms / 4 + 51))
        } else {
            None
        };
        churns.push(Churn {
            flow,
            at_ms,
            revive_ms,
        });
    }
    Scenario {
        preset: Preset::Pool,
        seed,
        link_bps,
        server: ServerSpec::Constant,
        hops: 1,
        prop_ms: 0,
        horizon_ms,
        per_flow_cap: None,
        shared_cap: None,
        drop_policy: DropKind::Tail,
        recovery_at_ms: None,
        flows,
        droops: Vec::new(),
        churns,
    }
}

fn gen_graph(seed: u64, rng: &mut SimRng) -> Scenario {
    // Forwarding-graph chain: like tandem, the observed flow crosses
    // every hop (σ, ρ)-shaped — but the cross traffic spans random
    // multi-hop sub-paths `entry..=exit`, so intermediate ports carry
    // flows that entered the graph at different ingress points (real
    // fan-in), and the full drop-policy spectrum plus an optional
    // shared cap is in play. Admission stays ≤ 90% of C on every hop a
    // flow crosses, so the Theorem 6 / Corollary 1 bounds remain
    // theorems along every path.
    let hops = rng.uniform_range(2, 6) as usize;
    let link_bps = 1_000_000u64;
    let prop_ms = rng.uniform_range(1, 5);
    let horizon_ms = rng.uniform_range(3, 8) * 1_000;
    let delta_bits = rng.uniform_range(0, 4) * 4_000;
    let server = if delta_bits == 0 {
        ServerSpec::Constant
    } else {
        ServerSpec::Fc { delta_bits }
    };

    let mut flows = Vec::new();
    let rho = 1_000 * rng.uniform_range(32, 97);
    let obs_len = 50 * rng.uniform_range(2, 9);
    flows.push(FlowSpec {
        id: OBSERVED_FLOW.0,
        weight_bps: rho,
        size: SizeDist::Fixed(obs_len),
        source: SourceKind::ShapedPoisson {
            sigma_pkts: rng.uniform_range(1, 6) as u32,
        },
        start_ms: 0,
        entry: 0,
        exit: hops - 1,
    });
    // Cross flows on multi-hop sub-paths; per-hop budget tracked so
    // admission holds on every hop a flow crosses.
    let cap = link_bps * 9 / 10;
    let mut used = vec![rho; hops];
    for i in 0..rng.uniform_range(5, 10) {
        let entry = rng.uniform_range(0, hops as u64) as usize;
        let exit = rng.uniform_range(entry as u64, hops as u64) as usize;
        let headroom = (entry..=exit)
            .map(|h| cap.saturating_sub(used[h]))
            .min()
            .expect("non-empty path");
        if headroom < 25_000 {
            continue;
        }
        let w = (headroom * rng.uniform_range(25, 76) / 100).max(10_000);
        for u in &mut used[entry..=exit] {
            *u += w;
        }
        flows.push(FlowSpec {
            id: 100 + i as u32,
            weight_bps: w,
            size: pick_size(rng, 500),
            source: if rng.uniform() < 0.5 {
                SourceKind::Cbr
            } else {
                SourceKind::Poisson
            },
            start_ms: rng.uniform_range(0, 20),
            entry,
            exit,
        });
    }

    // Faults: droops (folded into the per-hop effective δ by the
    // checker), cross-only churn, caps, and a randomized drop policy.
    let mut droops = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        droops.push(Droop {
            hop: rng.uniform_range(0, hops as u64) as usize,
            at_ms: rng.uniform_range(horizon_ms / 4, horizon_ms / 2),
            dur_ms: rng.uniform_range(100, 401),
            percent: rng.uniform_range(40, 91) as u32,
        });
    }
    let cross_ids: Vec<u32> = flows.iter().skip(1).map(|f| f.id).collect();
    let mut churns = Vec::new();
    for _ in 0..rng.uniform_range(0, 3) {
        if cross_ids.is_empty() {
            break;
        }
        let victim = cross_ids[rng.uniform_range(0, cross_ids.len() as u64) as usize];
        if churns.iter().any(|c: &Churn| c.flow == victim) {
            continue;
        }
        churns.push(Churn {
            flow: victim,
            at_ms: rng.uniform_range(horizon_ms / 3, 2 * horizon_ms / 3),
            revive_ms: None,
        });
    }
    let per_flow_cap = if rng.uniform() < 0.5 {
        None
    } else {
        Some(rng.uniform_range(4, 25) as usize)
    };
    let shared_cap = if rng.uniform() < 0.33 {
        Some(rng.uniform_range(24, 61) as usize)
    } else {
        None
    };
    let drop_policy = match rng.uniform_range(0, 3) {
        0 => DropKind::Tail,
        1 => DropKind::Head,
        _ => DropKind::Lwp,
    };

    Scenario {
        preset: Preset::Graph,
        seed,
        link_bps,
        server,
        hops,
        prop_ms,
        horizon_ms,
        per_flow_cap,
        shared_cap,
        drop_policy,
        recovery_at_ms: None,
        flows,
        droops,
        churns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for preset in Preset::ALL {
            let a = Scenario::from_seed(preset, 42);
            let b = Scenario::from_seed(preset, 42);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            let c = Scenario::from_seed(preset, 43);
            assert_ne!(format!("{a:?}"), format!("{c:?}"), "{preset:?}");
        }
    }

    #[test]
    fn replay_line_round_trips() {
        for preset in Preset::ALL {
            for seed in [0u64, 1, 987_654_321] {
                let sc = Scenario::from_seed(preset, seed);
                let line = sc.replay_line();
                let back = Scenario::from_replay_line(&line).expect("parse");
                assert_eq!(back.preset, preset);
                assert_eq!(back.seed, seed);
                assert_eq!(format!("{back:?}"), format!("{sc:?}"));
            }
        }
        // A replay line embedded in a larger failure message parses too.
        let msg = "Theorem 6 violated by 3.2ms\n  conformance replay: preset=tandem seed=7\n";
        let sc = Scenario::from_replay_line(msg).expect("parse embedded");
        assert_eq!(sc.preset, Preset::Tandem);
        assert_eq!(sc.seed, 7);
    }

    #[test]
    fn arrivals_are_deterministic_and_conforming() {
        let sc = Scenario::from_seed(Preset::Tandem, 11);
        let obs = sc.observed().clone();
        let a = sc.arrivals_for(&obs);
        let b = sc.arrivals_for(&obs);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // The shaped observed flow conforms to its (σ, ρ) bucket.
        if let SourceKind::ShapedPoisson { sigma_pkts } = obs.source {
            let bucket = LeakyBucket::new(sigma_pkts as u64 * obs.max_len().bits(), obs.weight());
            assert!(bucket.conforms(&a));
        } else {
            panic!("tandem observed flow must be shaped");
        }
    }

    #[test]
    fn tandem_admission_holds_per_hop() {
        for preset in [Preset::Tandem, Preset::Graph] {
            for seed in 0..40u64 {
                let sc = Scenario::from_seed(preset, seed);
                for h in 0..sc.hops {
                    let total: u64 = sc
                        .flows
                        .iter()
                        .filter(|f| f.entry <= h && h <= f.exit)
                        .map(|f| f.weight_bps)
                        .sum();
                    assert!(
                        total <= sc.link_bps,
                        "{preset:?} seed {seed} hop {h}: Σr = {total} > C = {}",
                        sc.link_bps
                    );
                }
                // Churn never targets the observed flow.
                assert!(sc.churns.iter().all(|c| c.flow != OBSERVED_FLOW.0));
            }
        }
    }

    #[test]
    fn graph_cross_flows_share_intermediate_ports() {
        // The preset's reason to exist: some seed must produce a cross
        // flow spanning more than one hop (tandem never does).
        let mut multi_hop_cross = 0usize;
        for seed in 0..40u64 {
            let sc = Scenario::from_seed(Preset::Graph, seed);
            multi_hop_cross += sc.flows.iter().skip(1).filter(|f| f.exit > f.entry).count();
        }
        assert!(multi_hop_cross > 0, "no multi-hop cross flow in 40 seeds");
    }
}
