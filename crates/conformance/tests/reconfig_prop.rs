//! Property tests for live reconfiguration: Theorem-1 reconvergence
//! under random mid-backlog weight changes, and the chaos preset as a
//! property over random seeds. `PROPTEST_CASES` raises the case count
//! in CI; the replay line for any failing chaos seed is embedded in the
//! panic message.

use analysis::sfq_fairness_bound;
use conformance::{run_chaos_conformance, Preset, Scenario};
use proptest::prelude::*;
use sfq_core::{FlowId, PacketFactory, Scheduler, Sfq, TieBreak};
use sfq_obs::FlowMetrics;
use simtime::{Bytes, Rate, Ratio, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After an arbitrary mid-backlog weight change on both flows, the
    /// post-settling service spread obeys the Theorem 1 bound computed
    /// from the NEW weights. Settling serves past the two old-rate
    /// heads (the only packets the tag-rewrite rule leaves at the old
    /// rate); the measurement window then starts from fresh watermarks
    /// at the new weights.
    #[test]
    fn reconvergence_holds_for_random_weight_changes(
        l1_raw in 200u64..1_001,
        l2_raw in 200u64..1_001,
        w1_k in 8u64..65,
        w2_k in 8u64..65,
        m1 in 1u64..9,
        m2 in 1u64..9,
    ) {
        let metrics = Rc::new(RefCell::new(FlowMetrics::new()));
        let mut sfq = Sfq::with_observer(TieBreak::Fifo, Rc::clone(&metrics));
        let (f1, f2) = (FlowId(1), FlowId(2));
        let (l1, l2) = (Bytes::new(l1_raw), Bytes::new(l2_raw));
        let (w1, w2) = (Rate::bps(1_000 * w1_k), Rate::bps(1_000 * w2_k));
        sfq.add_flow(f1, w1);
        sfq.add_flow(f2, w2);

        // Deep standing backlogs: 200 per flow covers the worst case
        // where the post-change ratio (up to 4x:0.5x = 8:1 here, and
        // floored at 4 kbps) steers nearly every dequeue to one flow
        // through the 94 serviced packets.
        let mut fac = PacketFactory::new();
        let t = SimTime::ZERO;
        for _ in 0..200 {
            sfq.enqueue(t, fac.make(f1, l1, t));
            sfq.enqueue(t, fac.make(f2, l2, t));
        }
        for _ in 0..10 {
            sfq.dequeue(t);
        }
        let w1n = Rate::bps(w1.as_bps() * m1 / 2).max(Rate::bps(4_000));
        let w2n = Rate::bps(w2.as_bps() * m2 / 2).max(Rate::bps(4_000));
        sfq.try_set_weight(f1, w1n).unwrap();
        sfq.try_set_weight(f2, w2n).unwrap();
        // Settling: twice the one-head-per-flow bound.
        for _ in 0..4 {
            sfq.dequeue(t);
        }
        // Fresh watermark window at the new weights.
        *metrics.borrow_mut() = FlowMetrics::new();
        sfq.add_flow(f1, w1n);
        sfq.add_flow(f2, w2n);
        for _ in 0..80 {
            sfq.dequeue(t);
        }
        prop_assert!(sfq.backlog(f1) > 0 && sfq.backlog(f2) > 0,
            "both flows must stay backlogged through the measurement window");
        let spread = metrics
            .borrow()
            .worst_spread_between(f1, f2)
            .unwrap_or(Ratio::ZERO);
        let bound = sfq_fairness_bound(l1, w1n, l2, w2n);
        prop_assert!(
            spread <= bound,
            "spread {spread:?} > bound {bound:?} after reconvergence \
             (w1 {w1:?}->{w1n:?}, w2 {w2:?}->{w2n:?}, l1 {l1:?}, l2 {l2:?})"
        );
    }

    /// The chaos preset holds as a property over random seeds: every
    /// seed's no-op identity, driver identity, conservation, and
    /// reconvergence legs pass, and the workload is never degenerate.
    #[test]
    fn chaos_conformance_over_random_seeds(seed in 0u64..1 << 48) {
        let sc = Scenario::from_seed(Preset::Chaos, seed);
        let out = run_chaos_conformance(&sc)
            .map_err(TestCaseError::fail)?;
        prop_assert!(out.offered > 0);
        prop_assert_eq!(out.departures + out.refusals, out.offered);
        prop_assert!(out.recovery_spread <= out.fairness_bound);
    }
}
