//! Analytic bounds from the paper's theorems, as exact rationals.
//!
//! Each function is a direct transcription of an equation; the test
//! suite checks the paper's worked numeric examples (24.4 ms, 122 ms,
//! 20.39 ms, 2.48 ms) against these, and the integration tests check
//! that *measured* schedules never violate them.

use simtime::{Bytes, Rate, Ratio, SimDuration, SimTime};

/// Theorem 1 / fairness measure of SFQ (and SCFQ):
/// `H(f, m) = l_f^max/r_f + l_m^max/r_m` (seconds of normalized
/// service).
pub fn sfq_fairness_bound(lf_max: Bytes, rf: Rate, lm_max: Bytes, rm: Rate) -> Ratio {
    rf.tag_span(lf_max) + rm.tag_span(lm_max)
}

/// Golestani's lower bound on any packet algorithm's fairness measure:
/// `H(f,m) >= (l_f^max/r_f + l_m^max/r_m) / 2`.
pub fn fairness_lower_bound(lf_max: Bytes, rf: Rate, lm_max: Bytes, rm: Rate) -> Ratio {
    sfq_fairness_bound(lf_max, rf, lm_max, rm) / Ratio::from_int(2)
}

/// DRR's fairness measure with the minimum weight normalized to 1
/// (Section 1.2): `H(f,m) = 1 + l_f^max/r_f + l_m^max/r_m`.
pub fn drr_fairness_bound(lf_max: Bytes, rf: Rate, lm_max: Bytes, rm: Rate) -> Ratio {
    Ratio::ONE + sfq_fairness_bound(lf_max, rf, lm_max, rm)
}

/// Expected arrival times (Eq. 37) of a packet sequence
/// `(arrival, len)` at reserved rate `r`: `EAT(p^j) = max(A(p^j),
/// EAT(p^{j-1}) + l^{j-1}/r)`.
pub fn expected_arrival_times(arrivals: &[(SimTime, Bytes)], r: Rate) -> Vec<SimTime> {
    let mut out = Vec::with_capacity(arrivals.len());
    let mut floor: Option<SimTime> = None;
    for &(a, len) in arrivals {
        let eat = match floor {
            None => a,
            Some(f) => a.max(f),
        };
        floor = Some(eat + r.tx_time(len));
        out.push(eat);
    }
    out
}

/// Generalized Eq. 37 with per-packet rates `r^j`:
/// `EAT(p^j) = max(A(p^j), EAT(p^{j-1}) + l^{j-1}/r^{j-1})`.
pub fn expected_arrival_times_var(arrivals: &[(SimTime, Bytes, Rate)]) -> Vec<SimTime> {
    let mut out = Vec::with_capacity(arrivals.len());
    let mut floor: Option<SimTime> = None;
    for &(a, len, r) in arrivals {
        let eat = match floor {
            None => a,
            Some(f) => a.max(f),
        };
        floor = Some(eat + r.tx_time(len));
        out.push(eat);
    }
    out
}

/// Theorem 4 delay term of an SFQ FC server (everything added to EAT):
/// `Σ_{n≠f} l_n^max/C + l_f^j/C + δ(C)/C`.
pub fn sfq_delay_term(
    other_lmax: &[Bytes],
    own_len: Bytes,
    c: Rate,
    delta_bits: u64,
) -> SimDuration {
    let mut total = Ratio::ZERO;
    for &l in other_lmax {
        total += c.tag_span(l);
    }
    total += c.tag_span(own_len);
    total += Ratio::new(delta_bits as i128, c.as_bps() as i128);
    SimDuration::from_ratio(total)
}

/// Eq. 56: SCFQ delay term (constant-rate server):
/// `Σ_{n≠f} l_n^max/C + l_f^j/r_f^j`.
pub fn scfq_delay_term(
    other_lmax: &[Bytes],
    own_len: Bytes,
    own_rate: Rate,
    c: Rate,
) -> SimDuration {
    let mut total = Ratio::ZERO;
    for &l in other_lmax {
        total += c.tag_span(l);
    }
    total += own_rate.tag_span(own_len);
    SimDuration::from_ratio(total)
}

/// Eq. 57: the SCFQ−SFQ max-delay gap `l/r − l/C` on a constant-rate
/// server. The paper's example: 200 B at 64 Kb/s vs C = 100 Mb/s gives
/// 24.4 ms (to rounding).
pub fn scfq_sfq_delay_gap(len: Bytes, r: Rate, c: Rate) -> SimDuration {
    SimDuration::from_ratio(r.tag_span(len) - c.tag_span(len))
}

/// WFQ delay term: `l_f^j/r_f^j + l_max/C` (the guarantee quoted above
/// Eq. 58).
pub fn wfq_delay_term(own_len: Bytes, own_rate: Rate, lmax: Bytes, c: Rate) -> SimDuration {
    SimDuration::from_ratio(own_rate.tag_span(own_len) + c.tag_span(lmax))
}

/// Eq. 58: Δ(p_f^j) = WFQ bound − SFQ bound, the reduction in maximum
/// delay SFQ achieves for packet `p_f^j`. Positive means SFQ is better.
pub fn delta_wfq_minus_sfq(
    own_len: Bytes,
    own_rate: Rate,
    lmax: Bytes,
    other_lmax: &[Bytes],
    c: Rate,
) -> Ratio {
    let wfq = own_rate.tag_span(own_len) + c.tag_span(lmax);
    let mut sfq = Ratio::ZERO;
    for &l in other_lmax {
        sfq += c.tag_span(l);
    }
    sfq += c.tag_span(own_len);
    wfq - sfq
}

/// Theorem 2 throughput floor for a flow backlogged over `[t1, t2]` on
/// an SFQ FC server: `r_f (t2−t1) − r_f Σ l_n^max / C − r_f δ/C −
/// l_f^max`, in bits (may be negative for short intervals).
pub fn sfq_throughput_floor_bits(
    rf: Rate,
    interval: SimDuration,
    all_lmax: &[Bytes],
    c: Rate,
    delta_bits: u64,
    lf_max: Bytes,
) -> Ratio {
    let mut sum_l = Ratio::ZERO;
    for &l in all_lmax {
        sum_l += l.bits_ratio();
    }
    rf.as_ratio() * interval.as_ratio()
        - rf.as_ratio() * sum_l / c.as_ratio()
        - rf.as_ratio() * Ratio::new(delta_bits as i128, c.as_bps() as i128)
        - lf_max.bits_ratio()
}

/// Eq. 65: the FC parameters of the virtual server a class `f` sees
/// when the underlying link is FC `(C, δ)` and the sibling classes have
/// maximum packet sizes `all_lmax`:
/// `(r_f, r_f Σ l_n^max/C + r_f δ/C + l_f^max)`.
pub fn virtual_server_fc(
    rf: Rate,
    all_lmax: &[Bytes],
    c: Rate,
    delta_bits: u64,
    lf_max: Bytes,
) -> (Rate, u64) {
    let mut sum_l = Ratio::ZERO;
    for &l in all_lmax {
        sum_l += l.bits_ratio();
    }
    let delta = rf.as_ratio() * sum_l / c.as_ratio()
        + rf.as_ratio() * Ratio::new(delta_bits as i128, c.as_bps() as i128)
        + lf_max.bits_ratio();
    (rf, delta.ceil().max(0) as u64)
}

/// Eq. 73: delay shifting predicate — partition `Q_i` (with `|Q_i|`
/// flows and rate `C_i`) sees a *smaller* hierarchical bound than flat
/// SFQ over `|Q|` flows in `K` partitions iff
/// `(|Q_i| + 1)/(|Q| − K) < C_i / C`.
pub fn delay_shift_improves(qi: usize, q: usize, k: usize, ci: Rate, c: Rate) -> bool {
    assert!(q > k, "need more flows than partitions");
    Ratio::new((qi + 1) as i128, (q - k) as i128)
        < Ratio::new(ci.as_bps() as i128, c.as_bps() as i128)
}

/// Eq. 67: Delay EDD schedulability. Checks
/// `Σ_n max(0, ceil((t−d_n) r_n / l_n)) · l_n / C <= t` at every
/// candidate `t` up to `t_max` (candidates are the discontinuity points
/// `d_n + k·l_n/r_n`). Exact, O(points · flows).
pub fn edd_schedulable(
    flows: &[(Rate, Bytes, SimDuration)], // (r_n, l_n, d_n)
    c: Rate,
    t_max: SimDuration,
) -> bool {
    let mut points: Vec<Ratio> = Vec::new();
    for &(r, l, d) in flows {
        let step = r.tag_span(l);
        let mut t = d.as_ratio();
        while t <= t_max.as_ratio() {
            points.push(t);
            t += step;
        }
    }
    points.sort();
    points.dedup();
    for &t in &points {
        if !t.is_positive() {
            continue;
        }
        let mut demand = Ratio::ZERO;
        for &(r, l, d) in flows {
            let avail = t - d.as_ratio();
            if avail.is_positive() {
                let k = (avail / r.tag_span(l)).ceil();
                demand += Ratio::from_int(k) * c.tag_span(l);
            }
        }
        if demand > t {
            return false;
        }
    }
    true
}

/// Theorems 3/5 tail envelope of an EBF server `(C, B, α, δ)`: the
/// probability that the guarantee slips by more than `γ/C` beyond its
/// deterministic part is at most `B·e^{−αγ}` (γ in bits, α per bit).
pub fn ebf_envelope(b: f64, alpha: f64, gamma_bits: u64) -> f64 {
    b * (-alpha * gamma_bits as f64).exp()
}

/// Deterministic end-to-end delay bound (Corollary 1 + A.5) for a
/// `(σ, ρ)`-conforming flow crossing `K` servers: `d <= σ/r − l/r +
/// Σ_n β^n + Σ τ` where `β^n` is each server's delay term.
pub fn e2e_delay_bound(
    sigma_bits: u64,
    r: Rate,
    len: Bytes,
    betas: &[SimDuration],
    props: &[SimDuration],
) -> SimDuration {
    let mut total = Ratio::new(sigma_bits as i128, r.as_bps() as i128) - r.tag_span(len);
    if total.is_negative() {
        total = Ratio::ZERO;
    }
    for b in betas {
        total += b.as_ratio();
    }
    for p in props {
        total += p.as_ratio();
    }
    SimDuration::from_ratio(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: f64 = 1e-3;

    #[test]
    fn paper_number_scfq_gap_24_4ms() {
        // 200 bytes, r = 64 Kb/s, C = 100 Mb/s: l/r - l/C = 25ms - 16us
        // = 24.984 ms... the paper says 24.4 ms using l/r = 25 ms and
        // subtracting its own l/C plus scheduling slop; we check the
        // formula value is ~24.98 ms and, more loosely, within 1 ms of
        // the paper's quoted 24.4 ms (they appear to have rounded).
        let gap = scfq_sfq_delay_gap(Bytes::new(200), Rate::kbps(64), Rate::mbps(100));
        let g = gap.as_secs_f64();
        assert!((g - 0.024984).abs() < 1e-6, "gap={g}");
        assert!((g - 0.0244).abs() < 1.0 * MS);
    }

    #[test]
    fn paper_number_gap_scales_by_hops() {
        let gap = scfq_sfq_delay_gap(Bytes::new(200), Rate::kbps(64), Rate::mbps(100));
        let five = gap.as_secs_f64() * 5.0;
        // Paper: "increases to 122ms for K = 5".
        assert!((five - 0.122).abs() < 5.0 * MS, "5x gap={five}");
    }

    #[test]
    fn paper_numbers_delay_mix_70_video_200_audio() {
        // 70 flows at 1 Mb/s + 200 flows at 64 Kb/s, C = 100 Mb/s,
        // 200-byte packets everywhere.
        let c = Rate::mbps(100);
        let l = Bytes::new(200);
        let mut others = Vec::new();
        for _ in 0..269 {
            others.push(l); // |Q| - 1 = 269 other flows
        }
        // 64 Kb/s flow: Δ = l/r + l/C − 269·l/C − l/C = 25ms − 269·16μs
        let d_low = delta_wfq_minus_sfq(l, Rate::kbps(64), l, &others, c);
        let d_low_s = d_low.to_f64();
        assert!((d_low_s - 0.02039).abs() < 0.5 * MS, "low={d_low_s}");
        // 1 Mb/s flow: Δ = 1.6ms − 269·16μs ≈ −2.70ms... the paper says
        // the 1 Mb/s flows' delay *increases* by 2.48 ms.
        let d_high = delta_wfq_minus_sfq(l, Rate::mbps(1), l, &others, c);
        let d_high_s = d_high.to_f64();
        assert!(d_high_s < 0.0);
        assert!((-d_high_s - 0.00248).abs() < 0.4 * MS, "high={d_high_s}");
    }

    #[test]
    fn delta_sign_flips_at_coupling_threshold() {
        // Eq. 60: Δ >= 0 iff 1/(|Q|−1) >= r_f/C (all lengths equal).
        let c = Rate::mbps(10);
        let l = Bytes::new(200);
        let q = 11usize; // |Q| - 1 = 10
        let others = vec![l; q - 1];
        // r = C/10 exactly at threshold: Δ = 0.
        let at = delta_wfq_minus_sfq(l, Rate::mbps(1), l, &others, c);
        assert!(at.is_zero(), "at threshold: {at:?}");
        let below = delta_wfq_minus_sfq(l, Rate::kbps(500), l, &others, c);
        assert!(below.is_positive());
        let above = delta_wfq_minus_sfq(l, Rate::mbps(2), l, &others, c);
        assert!(above.is_negative());
    }

    #[test]
    fn fairness_bounds_relate() {
        let h = sfq_fairness_bound(
            Bytes::new(100),
            Rate::kbps(1),
            Bytes::new(100),
            Rate::kbps(1),
        );
        let lo = fairness_lower_bound(
            Bytes::new(100),
            Rate::kbps(1),
            Bytes::new(100),
            Rate::kbps(1),
        );
        assert_eq!(h, lo * Ratio::from_int(2));
        // Paper's DRR example: r = 100, l = 1 -> H_DRR = 1.02, 51x the
        // 0.02 of SCFQ/SFQ (the paper says "50 times larger").
        let drr = drr_fairness_bound(Bytes::new(1), Rate::bps(800), Bytes::new(1), Rate::bps(800));
        let sfq = sfq_fairness_bound(Bytes::new(1), Rate::bps(800), Bytes::new(1), Rate::bps(800));
        assert_eq!(drr, Ratio::ONE + sfq);
        assert_eq!(sfq, Ratio::new(2, 100));
    }

    #[test]
    fn eat_chain_matches_eq37() {
        let r = Rate::bps(1_000); // 125 B = 1 s
        let arr = vec![
            (SimTime::ZERO, Bytes::new(125)),
            (SimTime::ZERO, Bytes::new(125)),
            (SimTime::from_secs(5), Bytes::new(125)),
        ];
        let eats = expected_arrival_times(&arr, r);
        assert_eq!(
            eats,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(5)]
        );
    }

    #[test]
    fn throughput_floor_positive_for_long_intervals() {
        let floor = sfq_throughput_floor_bits(
            Rate::kbps(64),
            SimDuration::from_secs(10),
            &[Bytes::new(200); 10],
            Rate::mbps(10),
            0,
            Bytes::new(200),
        );
        assert!(floor.is_positive());
        let tiny = sfq_throughput_floor_bits(
            Rate::kbps(64),
            SimDuration::from_millis(1),
            &[Bytes::new(200); 10],
            Rate::mbps(10),
            0,
            Bytes::new(200),
        );
        assert!(tiny.is_negative());
    }

    #[test]
    fn virtual_server_params_recursive_shape() {
        // Eq. 65 with C=10Mb/s, δ=0, siblings 3 x 200B, r_f = 1Mb/s.
        let (r, delta) = virtual_server_fc(
            Rate::mbps(1),
            &[Bytes::new(200); 3],
            Rate::mbps(10),
            0,
            Bytes::new(200),
        );
        assert_eq!(r, Rate::mbps(1));
        // r_f * 4800/10^7 + 1600 = 480 + 1600.
        assert_eq!(delta, 2_080);
    }

    #[test]
    fn delay_shift_predicate_matches_eq73() {
        // |Q_i|+1 = 3, |Q|-K = 8: needs C_i/C > 3/8.
        assert!(delay_shift_improves(
            2,
            10,
            2,
            Rate::mbps(4),
            Rate::mbps(10)
        ));
        assert!(!delay_shift_improves(
            2,
            10,
            2,
            Rate::mbps(3),
            Rate::mbps(10)
        ));
    }

    #[test]
    fn edd_schedulability_accepts_light_load_rejects_overload() {
        let c = Rate::mbps(1);
        let light = vec![
            (
                Rate::kbps(100),
                Bytes::new(200),
                SimDuration::from_millis(50),
            ),
            (
                Rate::kbps(100),
                Bytes::new(200),
                SimDuration::from_millis(50),
            ),
        ];
        assert!(edd_schedulable(&light, c, SimDuration::from_secs(2)));
        let heavy = vec![
            (
                Rate::kbps(600),
                Bytes::new(200),
                SimDuration::from_millis(1),
            ),
            (
                Rate::kbps(600),
                Bytes::new(200),
                SimDuration::from_millis(1),
            ),
        ];
        assert!(!edd_schedulable(&heavy, c, SimDuration::from_secs(2)));
    }

    #[test]
    fn e2e_bound_composes_hops() {
        let beta = SimDuration::from_millis(10);
        let tau = SimDuration::from_millis(5);
        let b = e2e_delay_bound(
            8 * 200 * 3,
            Rate::kbps(64),
            Bytes::new(200),
            &[beta, beta, beta],
            &[tau, tau],
        );
        // σ/r = 75 ms, l/r = 25 ms, + 30 ms + 10 ms = 90 ms.
        assert_eq!(b, SimDuration::from_millis(90));
    }
}
