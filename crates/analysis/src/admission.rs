//! Admission control for an SFQ server.
//!
//! The paper's guarantees are conditional on admission: Theorems 2–5
//! require `Σ_n r_n <= C` (or `Σ_n R_n(v) <= C` for variable rates).
//! This module packages that check together with the per-flow delay
//! and throughput budgets a flow is entitled to once admitted — the
//! interface a signalling/reservation layer would call.

use crate::bounds::{sfq_delay_term, sfq_throughput_floor_bits};
use simtime::{Bytes, Rate, Ratio, SimDuration};

/// A flow's reservation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Reserved rate `r_f` (also the SFQ weight).
    pub rate: Rate,
    /// Maximum packet length `l_f^max`.
    pub max_len: Bytes,
}

/// Why a reservation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// Admitting the flow would make `Σ r_n` exceed the server rate.
    CapacityExceeded {
        /// Aggregate reserved rate including the candidate (b/s).
        requested_bps: u64,
        /// Server average rate (b/s).
        capacity_bps: u64,
    },
    /// Zero-rate or zero-length specs are meaningless.
    InvalidSpec,
}

/// The guarantee an admitted flow holds (Theorems 2 and 4).
#[derive(Clone, Copy, Debug)]
pub struct Guarantee {
    /// Worst-case extra delay beyond a packet's expected arrival time.
    pub delay_term: SimDuration,
    /// Long-run throughput floor: for any backlogged interval `T`,
    /// `W_f >= rate * T - slack_bits`.
    pub throughput_slack_bits: u64,
}

/// Admission controller for one SFQ FC server `(C, δ)`.
#[derive(Debug)]
pub struct Admission {
    capacity: Rate,
    delta_bits: u64,
    flows: Vec<FlowSpec>,
}

impl Admission {
    /// Controller for an FC server with average rate `capacity` and
    /// burstiness `delta_bits` (use 0 for a constant-rate link).
    pub fn new(capacity: Rate, delta_bits: u64) -> Self {
        assert!(capacity.as_bps() > 0, "server capacity must be positive");
        Admission {
            capacity,
            delta_bits,
            flows: Vec::new(),
        }
    }

    /// Currently admitted flows.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Aggregate reserved rate.
    pub fn reserved(&self) -> Rate {
        self.flows.iter().map(|f| f.rate).sum()
    }

    /// Try to admit `spec`. On success the flow is recorded and its
    /// guarantee returned; on failure nothing changes.
    pub fn admit(&mut self, spec: FlowSpec) -> Result<Guarantee, AdmissionError> {
        if spec.rate.as_bps() == 0 || spec.max_len.as_u64() == 0 {
            return Err(AdmissionError::InvalidSpec);
        }
        let requested = self.reserved().as_bps() + spec.rate.as_bps();
        if requested > self.capacity.as_bps() {
            return Err(AdmissionError::CapacityExceeded {
                requested_bps: requested,
                capacity_bps: self.capacity.as_bps(),
            });
        }
        self.flows.push(spec);
        Ok(self.guarantee_of(self.flows.len() - 1))
    }

    /// Remove a previously admitted flow (by the index order of
    /// admission); returns it.
    pub fn release(&mut self, index: usize) -> FlowSpec {
        self.flows.remove(index)
    }

    /// The Theorem 2/4 guarantee currently held by flow `index`.
    /// Admitting more flows later *weakens* earlier guarantees (their
    /// delay term includes every peer's `l^max`), so callers re-query
    /// after membership changes.
    pub fn guarantee_of(&self, index: usize) -> Guarantee {
        let spec = self.flows[index];
        let others: Vec<Bytes> = self
            .flows
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != index)
            .map(|(_, f)| f.max_len)
            .collect();
        let delay_term = sfq_delay_term(&others, spec.max_len, self.capacity, self.delta_bits);
        // Theorem 2 slack: r Σ l^max / C + r δ/C + l_f^max, independent
        // of the interval length.
        let all: Vec<Bytes> = self.flows.iter().map(|f| f.max_len).collect();
        let zero_interval_floor = sfq_throughput_floor_bits(
            spec.rate,
            SimDuration::ZERO,
            &all,
            self.capacity,
            self.delta_bits,
            spec.max_len,
        );
        let slack = (-zero_interval_floor).max(Ratio::ZERO);
        Guarantee {
            delay_term,
            throughput_slack_bits: slack.ceil().max(0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kbps: u64, len: u64) -> FlowSpec {
        FlowSpec {
            rate: Rate::kbps(kbps),
            max_len: Bytes::new(len),
        }
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut ac = Admission::new(Rate::mbps(1), 0);
        for _ in 0..10 {
            ac.admit(spec(100, 500)).expect("fits");
        }
        let err = ac.admit(spec(1, 500)).unwrap_err();
        match err {
            AdmissionError::CapacityExceeded {
                requested_bps,
                capacity_bps,
            } => {
                assert_eq!(requested_bps, 1_001_000);
                assert_eq!(capacity_bps, 1_000_000);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(ac.flows().len(), 10);
    }

    #[test]
    fn release_frees_capacity() {
        let mut ac = Admission::new(Rate::kbps(100), 0);
        ac.admit(spec(60, 200)).expect("fits");
        assert!(ac.admit(spec(60, 200)).is_err());
        let freed = ac.release(0);
        assert_eq!(freed.rate, Rate::kbps(60));
        assert!(ac.admit(spec(60, 200)).is_ok());
    }

    #[test]
    fn guarantee_matches_theorem4_term() {
        let mut ac = Admission::new(Rate::mbps(10), 0);
        let g1 = ac.admit(spec(100, 200)).expect("fits");
        // Alone on the link: delay term = l/C = 1600/1e7 = 160 us.
        assert_eq!(g1.delay_term, SimDuration::from_micros(160));
        let _ = ac.admit(spec(100, 1_000)).expect("fits");
        // With a 1000 B peer the first flow's term grows by 8000/1e7.
        let g1b = ac.guarantee_of(0);
        assert_eq!(g1b.delay_term, SimDuration::from_micros(160 + 800));
    }

    #[test]
    fn throughput_slack_includes_delta() {
        let mut ac = Admission::new(Rate::kbps(100), 10_000);
        let g = ac.admit(spec(50, 250)).expect("fits");
        // slack = r*(l_sum)/C + r*delta/C + l_max
        //       = 50k*2000/100k + 50k*10000/100k + 2000 = 1000+5000+2000.
        assert_eq!(g.throughput_slack_bits, 8_000);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut ac = Admission::new(Rate::kbps(100), 0);
        assert_eq!(
            ac.admit(spec(0, 100)).unwrap_err(),
            AdmissionError::InvalidSpec
        );
        assert_eq!(
            ac.admit(FlowSpec {
                rate: Rate::kbps(1),
                max_len: Bytes::ZERO
            })
            .unwrap_err(),
            AdmissionError::InvalidSpec
        );
    }
}
