//! Windowed time-series over departure schedules — the raw material of
//! the paper's figures (cumulative sequence curves, per-window
//! throughput plots).

use servers::Departure;
use sfq_core::FlowId;
use simtime::{SimDuration, SimTime};

/// Per-window throughput of `flow` in bits/second: one sample per
/// `window`, covering `[0, horizon)`. Windows with no completed
/// service report 0.
pub fn throughput_series(
    departures: &[Departure],
    flow: FlowId,
    window: SimDuration,
    horizon: SimTime,
) -> Vec<(SimTime, f64)> {
    assert!(window > SimDuration::ZERO, "window must be positive");
    let w_s = window.as_secs_f64();
    let n = (horizon.as_secs_f64() / w_s).ceil() as usize;
    let mut bits = vec![0u64; n];
    for d in departures {
        if d.pkt.flow != flow || d.departure > horizon {
            continue;
        }
        let idx = (d.departure.as_secs_f64() / w_s) as usize;
        if idx < n {
            bits[idx] += d.pkt.len.bits();
        }
    }
    (0..n)
        .map(|i| {
            let end = SimTime::from_nanos(((i + 1) as f64 * w_s * 1e9) as i128);
            (end, bits[i] as f64 / w_s)
        })
        .collect()
}

/// Cumulative packet count of `flow` at each of its departures —
/// the Figure 1(b)-style sequence curve.
pub fn cumulative_series(departures: &[Departure], flow: FlowId) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    let mut n = 0usize;
    for d in departures {
        if d.pkt.flow == flow {
            n += 1;
            out.push((d.departure, n));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::PacketFactory;
    use simtime::Bytes;

    fn dep(pf: &mut PacketFactory, flow: u32, ms: i128, len: u64) -> Departure {
        let pkt = pf.make(FlowId(flow), Bytes::new(len), SimTime::ZERO);
        Departure {
            pkt,
            service_start: SimTime::from_millis(ms - 1),
            departure: SimTime::from_millis(ms),
        }
    }

    #[test]
    fn throughput_series_buckets_by_window() {
        let mut pf = PacketFactory::new();
        let deps = vec![
            dep(&mut pf, 1, 100, 125), // 1000 bits in window 0
            dep(&mut pf, 1, 600, 125), // window 1
            dep(&mut pf, 1, 700, 125), // window 1
            dep(&mut pf, 2, 100, 125), // other flow
        ];
        let s = throughput_series(
            &deps,
            FlowId(1),
            SimDuration::from_millis(500),
            SimTime::from_secs(2),
        );
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 2_000.0).abs() < 1e-9);
        assert!((s[1].1 - 4_000.0).abs() < 1e-9);
        assert_eq!(s[2].1, 0.0);
        assert_eq!(s[0].0, SimTime::from_millis(500));
    }

    #[test]
    fn cumulative_series_counts_in_order() {
        let mut pf = PacketFactory::new();
        let deps = vec![
            dep(&mut pf, 1, 10, 100),
            dep(&mut pf, 2, 20, 100),
            dep(&mut pf, 1, 30, 100),
        ];
        let s = cumulative_series(&deps, FlowId(1));
        assert_eq!(
            s,
            vec![(SimTime::from_millis(10), 1), (SimTime::from_millis(30), 2)]
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = throughput_series(&[], FlowId(1), SimDuration::ZERO, SimTime::from_secs(1));
    }
}
