//! Per-packet delay measurement and delay-guarantee checking.

use servers::Departure;
use sfq_core::FlowId;
use simtime::{Bytes, Rate, SimDuration, SimTime};

/// Queueing + transmission delay of every packet of `flow`:
/// `departure − arrival`, in departure order.
pub fn packet_delays(departures: &[Departure], flow: FlowId) -> Vec<SimDuration> {
    departures
        .iter()
        .filter(|d| d.pkt.flow == flow)
        .map(|d| d.departure - d.pkt.arrival)
        .collect()
}

/// Summary statistics over a set of durations.
#[derive(Clone, Copy, Debug)]
pub struct DelaySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean in seconds.
    pub mean_s: f64,
    /// Maximum in seconds.
    pub max_s: f64,
    /// Minimum in seconds.
    pub min_s: f64,
    /// Median in seconds.
    pub p50_s: f64,
    /// 99th percentile in seconds.
    pub p99_s: f64,
}

jsonline::impl_to_json!(DelaySummary {
    count,
    mean_s,
    max_s,
    min_s,
    p50_s,
    p99_s
});

impl DelaySummary {
    /// Summarize a sample of durations. Returns `None` if empty.
    pub fn from_durations(samples: &[SimDuration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        let count = secs.len();
        let mean_s = secs.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| secs[((count as f64 - 1.0) * p).round() as usize];
        Some(DelaySummary {
            count,
            mean_s,
            max_s: secs[count - 1],
            min_s: secs[0],
            p50_s: pct(0.5),
            p99_s: pct(0.99),
        })
    }
}

/// Check the EAT-based delay guarantee (Theorems 4/5 shape): every
/// packet of `flow` must depart by `EAT + term`. Returns the worst
/// violation (positive seconds) or zero.
///
/// The EAT chain is recomputed from the flow's arrival sequence at rate
/// `r` (Eq. 37), so this validates the *server*, not the scheduler's
/// own bookkeeping.
pub fn max_guarantee_violation(
    departures: &[Departure],
    flow: FlowId,
    r: Rate,
    term: SimDuration,
) -> SimDuration {
    let mut flow_deps: Vec<&Departure> = departures.iter().filter(|d| d.pkt.flow == flow).collect();
    // Rebuild the flow's true arrival order: by arrival time, then
    // minting order among simultaneous arrivals (Eq. 37 is defined
    // over the arrival sequence).
    flow_deps.sort_by_key(|d| (d.pkt.arrival, d.pkt.seq));
    let arrivals: Vec<(SimTime, Bytes)> = flow_deps
        .iter()
        .map(|d| (d.pkt.arrival, d.pkt.len))
        .collect();
    let eats = crate::bounds::expected_arrival_times(&arrivals, r);
    let mut worst = SimDuration::ZERO;
    for (dep, eat) in flow_deps.iter().zip(eats) {
        let bound = eat + term;
        if dep.departure > bound {
            worst = worst.max(dep.departure - bound);
        }
    }
    worst
}

/// Theorem 6 end-to-end check: every packet of a flow crossing a chain
/// of servers must leave the **last** server by `EAT + term`, where the
/// EAT chain (Eq. 37) is recomputed at rate `r` from the flow's arrival
/// sequence at the *first* server and `term = Σ_n β^n + Σ τ` composes
/// the per-hop delay terms and propagation delays. `packets` is the
/// flow's `(arrival at server 1, length, departure from server K)`
/// sequence in arrival order. Returns the worst violation (positive
/// seconds) or zero.
pub fn max_e2e_violation(
    packets: &[(SimTime, Bytes, SimTime)],
    r: Rate,
    term: SimDuration,
) -> SimDuration {
    let arrivals: Vec<(SimTime, Bytes)> = packets.iter().map(|&(a, l, _)| (a, l)).collect();
    for w in arrivals.windows(2) {
        debug_assert!(w[0].0 <= w[1].0, "packets must be in arrival order");
    }
    let eats = crate::bounds::expected_arrival_times(&arrivals, r);
    let mut worst = SimDuration::ZERO;
    for (&(_, _, dep), eat) in packets.iter().zip(eats) {
        let bound = eat + term;
        if dep > bound {
            worst = worst.max(dep - bound);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::{Packet, PacketFactory};

    fn dep(pf: &mut PacketFactory, flow: u32, arrive_ms: i128, depart_ms: i128) -> Departure {
        let pkt: Packet = pf.make(
            FlowId(flow),
            Bytes::new(125),
            SimTime::from_millis(arrive_ms),
        );
        Departure {
            pkt,
            service_start: SimTime::from_millis(depart_ms - 1),
            departure: SimTime::from_millis(depart_ms),
        }
    }

    #[test]
    fn delays_are_departure_minus_arrival() {
        let mut pf = PacketFactory::new();
        let deps = vec![
            dep(&mut pf, 1, 0, 10),
            dep(&mut pf, 1, 5, 30),
            dep(&mut pf, 2, 0, 7),
        ];
        let d = packet_delays(&deps, FlowId(1));
        assert_eq!(
            d,
            vec![SimDuration::from_millis(10), SimDuration::from_millis(25)]
        );
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        let s = DelaySummary::from_durations(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 0.0505).abs() < 1e-9);
        assert!((s.max_s - 0.1).abs() < 1e-12);
        assert!((s.min_s - 0.001).abs() < 1e-12);
        assert!((s.p50_s - 0.050).abs() < 0.002);
        assert!((s.p99_s - 0.099).abs() < 0.002);
        assert!(DelaySummary::from_durations(&[]).is_none());
    }

    #[test]
    fn guarantee_violation_detection() {
        let mut pf = PacketFactory::new();
        // 125 B at 1000 bps: EATs 0, 1000 ms. Bound term 50 ms.
        let deps = vec![
            dep(&mut pf, 1, 0, 40),   // ok: 40 <= 0 + 50
            dep(&mut pf, 1, 0, 1100), // violation: 1100 > 1000 + 50
        ];
        let v = max_guarantee_violation(
            &deps,
            FlowId(1),
            Rate::bps(1_000),
            SimDuration::from_millis(50),
        );
        assert_eq!(v, SimDuration::from_millis(50));
        let ok = max_guarantee_violation(
            &deps,
            FlowId(1),
            Rate::bps(1_000),
            SimDuration::from_millis(100),
        );
        assert_eq!(ok, SimDuration::ZERO);
    }
}
