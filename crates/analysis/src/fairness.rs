//! Measuring fairness from departure schedules.
//!
//! The paper's fairness criterion (Section 1.2): a packet is served in
//! `[t1, t2]` if it *starts and finishes* service within the interval,
//! and an algorithm is fair with measure `H(f, m)` if
//! `|W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| <= H(f,m)` over every interval in
//! which both flows are backlogged.
//!
//! We evaluate intervals whose endpoints are *service boundaries*
//! (instants between transmissions): at a boundary no packet is
//! mid-service, so cumulative-work differences count exactly the
//! packets that start and finish inside the interval. The maximum gap
//! over all boundary pairs is then `max D − min D` of the normalized
//! service difference `D(t) = W_f(0,t)/r_f − W_m(0,t)/r_m`, computed in
//! one pass.

use servers::Departure;
use sfq_core::FlowId;
use simtime::{Bytes, Rate, Ratio, SimTime};

/// Work (aggregate bytes) of `flow` whose service starts and finishes
/// within `[t1, t2]` — the paper's `W_f(t1, t2)`.
pub fn work_in_interval(departures: &[Departure], flow: FlowId, t1: SimTime, t2: SimTime) -> Bytes {
    departures
        .iter()
        .filter(|d| d.pkt.flow == flow && d.service_start >= t1 && d.departure <= t2)
        .map(|d| d.pkt.len)
        .sum()
}

/// Normalized cumulative service `W_f(0, t)/r_f` sampled at every
/// service boundary in `departures` (which must be time-sorted, as
/// `run_server` produces them). Returns `(boundary, normalized_work)`
/// pairs; the first entry is `(0, 0)`.
pub fn normalized_service_curve(
    departures: &[Departure],
    flow: FlowId,
    rate: Rate,
) -> Vec<(SimTime, Ratio)> {
    let mut out = vec![(SimTime::ZERO, Ratio::ZERO)];
    let mut acc = Ratio::ZERO;
    for d in departures {
        if d.pkt.flow == flow {
            acc += rate.tag_span(d.pkt.len);
        }
        out.push((d.departure, acc));
    }
    out
}

/// Maximum fairness gap `max |W_f/r_f − W_m/r_m|` over all service-
/// boundary intervals within `[from, to]`. The caller must ensure both
/// flows are backlogged throughout `[from, to]` for the result to be
/// comparable against `H(f, m)`.
pub fn max_fairness_gap(
    departures: &[Departure],
    f: FlowId,
    rf: Rate,
    m: FlowId,
    rm: Rate,
    from: SimTime,
    to: SimTime,
) -> Ratio {
    let mut d_min: Option<Ratio> = None;
    let mut d_max: Option<Ratio> = None;
    let mut wf = Ratio::ZERO;
    let mut wm = Ratio::ZERO;
    let mut consider = |d: Ratio| {
        d_min = Some(d_min.map_or(d, |x| x.min(d)));
        d_max = Some(d_max.map_or(d, |x| x.max(d)));
    };
    // Boundary at `from` (or the first departure after it) with the
    // cumulative work at that point.
    let mut started = false;
    for dep in departures {
        if dep.departure > to {
            break;
        }
        if !started && dep.service_start >= from {
            started = true;
            consider(wf - wm);
        }
        if dep.pkt.flow == f {
            wf += rf.tag_span(dep.pkt.len);
        } else if dep.pkt.flow == m {
            wm += rm.tag_span(dep.pkt.len);
        }
        if started {
            consider(wf - wm);
        }
    }
    match (d_min, d_max) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => Ratio::ZERO,
    }
}

/// Throughput (bits/s, lossy for reporting) of a flow over `[t1, t2]`.
pub fn throughput_bps(departures: &[Departure], flow: FlowId, t1: SimTime, t2: SimTime) -> f64 {
    let w = work_in_interval(departures, flow, t1, t2);
    w.bits() as f64 / (t2 - t1).as_secs_f64()
}

/// Jain's fairness index over per-flow normalized throughputs
/// `x_f = W_f / r_f`: `(Σ x)^2 / (n Σ x^2)`. 1.0 = perfectly
/// proportional allocation; 1/n = one flow hogging everything.
pub fn jain_index(
    departures: &[Departure],
    flows: &[(FlowId, Rate)],
    t1: SimTime,
    t2: SimTime,
) -> f64 {
    assert!(!flows.is_empty(), "Jain index needs at least one flow");
    let xs: Vec<f64> = flows
        .iter()
        .map(|&(f, r)| work_in_interval(departures, f, t1, t2).bits() as f64 / r.as_bps() as f64)
        .collect();
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0; // no service at all is (vacuously) even
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Time series of the pairwise fairness gap over sliding windows of
/// length `window` stepped by `window/2`: one `(window end, gap)`
/// sample per step. Useful to see fairness recover after a
/// perturbation (e.g. Figure 1(b)'s source-3 arrival).
pub fn fairness_gap_series(
    departures: &[Departure],
    f: FlowId,
    rf: Rate,
    m: FlowId,
    rm: Rate,
    window: simtime::SimDuration,
    horizon: SimTime,
) -> Vec<(SimTime, f64)> {
    assert!(window.as_ratio().is_positive(), "window must be positive");
    let w = window.as_secs_f64();
    let mut out = Vec::new();
    let mut start = 0.0f64;
    while start + w <= horizon.as_secs_f64() + 1e-12 {
        let a = SimTime::from_nanos((start * 1e9) as i128);
        let b = SimTime::from_nanos(((start + w) * 1e9) as i128);
        let gap = max_fairness_gap(departures, f, rf, m, rm, a, b);
        out.push((b, gap.to_f64()));
        start += w / 2.0;
    }
    out
}

/// Count of a flow's packets delivered by `t`.
pub fn packets_by(departures: &[Departure], flow: FlowId, t: SimTime) -> usize {
    departures
        .iter()
        .filter(|d| d.pkt.flow == flow && d.departure <= t)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use servers::{run_server, RateProfile};
    use sfq_core::{PacketFactory, Scheduler, Sfq};
    use simtime::SimDuration;

    /// Two equal-weight backlogged flows on a unit link.
    fn two_flow_run(n: usize) -> Vec<Departure> {
        let mut s = Sfq::new();
        s.add_flow(FlowId(1), Rate::bps(1_000));
        s.add_flow(FlowId(2), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let mut arrivals = Vec::new();
        for _ in 0..n {
            arrivals.push(pf.make(FlowId(1), Bytes::new(125), SimTime::ZERO));
            arrivals.push(pf.make(FlowId(2), Bytes::new(125), SimTime::ZERO));
        }
        let profile = RateProfile::constant(Rate::bps(2_000));
        run_server(&mut s, &profile, &arrivals, SimTime::from_secs(10_000))
    }

    #[test]
    fn work_counts_only_fully_contained_service() {
        let deps = two_flow_run(2);
        // Each packet takes 0.5 s on the 2000 bps link; four packets
        // total. Interval [0, 1s] contains exactly two services.
        let total = work_in_interval(&deps, FlowId(1), SimTime::ZERO, SimTime::from_secs(1))
            + work_in_interval(&deps, FlowId(2), SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(total, Bytes::new(250));
        // A window cutting a service in half counts neither endpoint
        // packet.
        let quarter = work_in_interval(
            &deps,
            FlowId(1),
            SimTime::from_millis(250),
            SimTime::from_millis(750),
        );
        assert_eq!(quarter, Bytes::ZERO);
    }

    #[test]
    fn equal_backlogged_flows_gap_bounded_by_theorem1() {
        let deps = two_flow_run(50);
        let gap = max_fairness_gap(
            &deps,
            FlowId(1),
            Rate::bps(1_000),
            FlowId(2),
            Rate::bps(1_000),
            SimTime::ZERO,
            SimTime::from_secs(50),
        );
        // H = l/r + l/r = 1 + 1 = 2 seconds of normalized service.
        assert!(gap <= Ratio::from_int(2), "gap={gap:?}");
        // And for an alternating schedule it is actually <= 1.
        assert!(gap <= Ratio::ONE, "gap={gap:?}");
    }

    #[test]
    fn normalized_curve_is_monotone() {
        let deps = two_flow_run(5);
        let curve = normalized_service_curve(&deps, FlowId(1), Rate::bps(1_000));
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, Ratio::from_int(5));
    }

    #[test]
    fn throughput_and_packet_counts() {
        let deps = two_flow_run(4);
        // 8 packets * 0.5s = 4s busy; each flow moves 4000 bits in 4s.
        let thr = throughput_bps(&deps, FlowId(1), SimTime::ZERO, SimTime::from_secs(4));
        assert!((thr - 1_000.0).abs() < 1e-9);
        assert_eq!(packets_by(&deps, FlowId(1), SimTime::from_secs(2)), 2);
        assert_eq!(packets_by(&deps, FlowId(1), SimTime::from_secs(4)), 4);
    }

    #[test]
    fn jain_index_extremes() {
        let deps = two_flow_run(20);
        let flows = [(FlowId(1), Rate::bps(1_000)), (FlowId(2), Rate::bps(1_000))];
        let j = jain_index(&deps, &flows, SimTime::ZERO, SimTime::from_secs(10));
        assert!(j > 0.99, "alternating schedule should be ~1: {j}");
        // A schedule serving only flow 1: index ~ 1/2.
        let mut pf = PacketFactory::new();
        let solo: Vec<Departure> = (0..10)
            .map(|k| {
                let p = pf.make(FlowId(1), Bytes::new(125), SimTime::ZERO);
                Departure {
                    pkt: p,
                    service_start: SimTime::from_millis(500 * k),
                    departure: SimTime::from_millis(500 * (k + 1)),
                }
            })
            .collect();
        let j = jain_index(&solo, &flows, SimTime::ZERO, SimTime::from_secs(10));
        assert!((j - 0.5).abs() < 1e-9, "hog should give 1/n: {j}");
    }

    #[test]
    fn gap_series_shape() {
        let deps = two_flow_run(40);
        let series = fairness_gap_series(
            &deps,
            FlowId(1),
            Rate::bps(1_000),
            FlowId(2),
            Rate::bps(1_000),
            SimDuration::from_secs(5),
            SimTime::from_secs(20),
        );
        assert!(series.len() >= 6);
        for (_, g) in &series {
            assert!(*g <= 2.0 + 1e-9, "window gap above Theorem 1 bound: {g}");
        }
    }

    #[test]
    fn gap_detects_unfair_schedule() {
        // FIFO-like burst: flow 1 served 10 in a row, then flow 2.
        let mut pf = PacketFactory::new();
        let mut deps = Vec::new();
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_millis(500);
        for flow in [1u32, 1, 1, 1, 1, 2, 2, 2, 2, 2] {
            let p = pf.make(FlowId(flow), Bytes::new(125), SimTime::ZERO);
            deps.push(Departure {
                pkt: p,
                service_start: t,
                departure: t + dt,
            });
            t += dt;
        }
        let gap = max_fairness_gap(
            &deps,
            FlowId(1),
            Rate::bps(1_000),
            FlowId(2),
            Rate::bps(1_000),
            SimTime::ZERO,
            t,
        );
        assert_eq!(gap, Ratio::from_int(5));
    }
}
