//! # analysis — fairness/delay metrics and the paper's analytic bounds
//!
//! Three layers:
//!
//! - [`fairness`]: measure `W_f(t1,t2)`, normalized service curves, and
//!   the empirical fairness gap from exact departure schedules,
//! - [`bounds`]: exact-rational transcriptions of Theorems 1–4, Eqs.
//!   56–60, 65, 67, 73, and the Corollary 1 / A.5 end-to-end bound,
//! - [`delay`]: per-packet delay statistics and EAT-based guarantee
//!   violation checks,
//! - [`admission`]: the reservation-time check (`Σ r_n <= C`) plus the
//!   per-flow delay/throughput budgets an admitted flow holds.

#![warn(missing_docs)]

pub mod admission;
pub mod bounds;
pub mod delay;
pub mod fairness;
pub mod timeseries;

pub use admission::{Admission, AdmissionError, FlowSpec, Guarantee};
pub use bounds::*;
pub use delay::{max_e2e_violation, max_guarantee_violation, packet_delays, DelaySummary};
pub use fairness::{
    fairness_gap_series, jain_index, max_fairness_gap, normalized_service_curve, packets_by,
    throughput_bps, work_in_interval,
};
pub use timeseries::{cumulative_series, throughput_series};
