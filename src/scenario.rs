//! A tiny scenario language for the `sfqsim` CLI.
//!
//! One directive per line; `#` starts a comment. Keys are
//! `key=value` pairs. Example:
//!
//! ```text
//! # 1 Mb/s link, SFQ, three flows
//! link rate=1mbps
//! sched sfq
//! flow id=1 weight=200kbps source=cbr rate=200kbps len=500
//! flow id=2 weight=100kbps source=poisson rate=100kbps len=200 seed=7
//! flow id=3 weight=100kbps source=burst count=100 len=1000
//! horizon 10s
//! ```
//!
//! Supported directives:
//! - `link rate=<rate> [fc_delta_bits=<n>]` — server capacity; with
//!   `fc_delta_bits` the link is a Fluctuation Constrained on-off
//!   profile instead of constant-rate.
//! - `sched <sfq|hsfq|scfq|wfq|fqs|vc|drr|edd|fifo|fa>`
//! - `flow id=<n> weight=<rate> source=<cbr|poisson|burst|onoff|vbr>
//!   ...source args...` (`deadline=<dur>` selects the flow's Delay EDD
//!   deadline when `sched edd`)
//! - `horizon <duration>`
//!
//! Rates accept `bps|kbps|mbps` suffixes; durations accept `s|ms|us`.

use crate::prelude::*;
use baselines::{DelayEdd, Drr, Fifo, Fqs, Scfq, VirtualClock, Wfq};
use std::collections::HashMap;

/// A parsed scenario, ready to run.
#[derive(Debug)]
pub struct Scenario {
    /// Server capacity.
    pub link: Rate,
    /// FC burstiness (0 = constant-rate link).
    pub fc_delta_bits: u64,
    /// Discipline name as written.
    pub sched: String,
    /// Flow definitions in file order.
    pub flows: Vec<FlowDef>,
    /// Simulation horizon.
    pub horizon: SimTime,
}

/// One flow directive.
#[derive(Debug, Clone)]
pub struct FlowDef {
    /// Flow id.
    pub id: u32,
    /// Scheduler weight.
    pub weight: Rate,
    /// Source kind + parameters.
    pub source: SourceDef,
    /// Delay EDD deadline (used only by `sched edd`).
    pub deadline: SimDuration,
}

/// Source specification.
#[derive(Debug, Clone)]
pub enum SourceDef {
    /// CBR at `rate` with `len`-byte packets.
    Cbr {
        /// Average rate.
        rate: Rate,
        /// Packet length.
        len: Bytes,
    },
    /// Poisson at `rate` with `len`-byte packets and RNG `seed`.
    Poisson {
        /// Average rate.
        rate: Rate,
        /// Packet length.
        len: Bytes,
        /// RNG seed.
        seed: u64,
    },
    /// `count` packets of `len` bytes at time `at`.
    Burst {
        /// Number of packets.
        count: usize,
        /// Packet length.
        len: Bytes,
        /// Burst instant.
        at: SimTime,
    },
    /// On-off CBR.
    OnOff {
        /// On-period duration.
        on: SimDuration,
        /// Off-period duration.
        off: SimDuration,
        /// Packet spacing during on periods.
        interval: SimDuration,
        /// Packet length.
        len: Bytes,
    },
    /// Synthetic MPEG VBR at `rate` mean.
    Vbr {
        /// Mean rate.
        rate: Rate,
        /// Packet length.
        len: Bytes,
        /// RNG seed.
        seed: u64,
    },
}

/// A scenario parse error with its line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Parse `12mbps` / `64kbps` / `800bps`.
pub fn parse_rate(s: &str) -> Option<Rate> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(v) = lower.strip_suffix("mbps") {
        (v, 1_000_000)
    } else if let Some(v) = lower.strip_suffix("kbps") {
        (v, 1_000)
    } else if let Some(v) = lower.strip_suffix("bps") {
        (v, 1)
    } else {
        return None;
    };
    num.parse::<u64>().ok().map(|v| Rate::bps(v * mult))
}

/// Parse `10s` / `500ms` / `25us`.
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    let lower = s.to_ascii_lowercase();
    if let Some(v) = lower.strip_suffix("ms") {
        return v.parse::<i128>().ok().map(SimDuration::from_millis);
    }
    if let Some(v) = lower.strip_suffix("us") {
        return v.parse::<i128>().ok().map(SimDuration::from_micros);
    }
    if let Some(v) = lower.strip_suffix('s') {
        return v.parse::<i128>().ok().map(SimDuration::from_secs);
    }
    None
}

fn kv_map(parts: &[&str], line: usize) -> Result<HashMap<String, String>, ParseError> {
    let mut map = HashMap::new();
    for p in parts {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected key=value, got `{p}`")))?;
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn get<'m>(
    map: &'m HashMap<String, String>,
    key: &str,
    line: usize,
) -> Result<&'m str, ParseError> {
    map.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| err(line, format!("missing `{key}=`")))
}

impl Scenario {
    /// Parse a scenario file's contents.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut link = None;
        let mut fc_delta_bits = 0u64;
        let mut sched = None;
        let mut flows = Vec::new();
        let mut horizon = None;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().expect("non-empty line");
            let rest: Vec<&str> = parts.collect();
            match directive {
                "link" => {
                    let map = kv_map(&rest, line_no)?;
                    link = Some(
                        parse_rate(get(&map, "rate", line_no)?)
                            .ok_or_else(|| err(line_no, "bad rate"))?,
                    );
                    if let Some(d) = map.get("fc_delta_bits") {
                        fc_delta_bits = d.parse().map_err(|_| err(line_no, "bad fc_delta_bits"))?;
                    }
                }
                "sched" => {
                    let name = rest
                        .first()
                        .ok_or_else(|| err(line_no, "missing discipline"))?;
                    sched = Some(name.to_string());
                }
                "flow" => {
                    let map = kv_map(&rest, line_no)?;
                    let id: u32 = get(&map, "id", line_no)?
                        .parse()
                        .map_err(|_| err(line_no, "bad id"))?;
                    let weight = parse_rate(get(&map, "weight", line_no)?)
                        .ok_or_else(|| err(line_no, "bad weight"))?;
                    let deadline = match map.get("deadline") {
                        Some(d) => parse_duration(d).ok_or_else(|| err(line_no, "bad deadline"))?,
                        None => SimDuration::from_millis(100),
                    };
                    let len = || -> Result<Bytes, ParseError> {
                        Ok(Bytes::new(
                            get(&map, "len", line_no)?
                                .parse()
                                .map_err(|_| err(line_no, "bad len"))?,
                        ))
                    };
                    let seed = || -> Result<u64, ParseError> {
                        Ok(match map.get("seed") {
                            Some(s) => s.parse().map_err(|_| err(line_no, "bad seed"))?,
                            None => 42 + id as u64,
                        })
                    };
                    let source = match get(&map, "source", line_no)? {
                        "cbr" => SourceDef::Cbr {
                            rate: parse_rate(get(&map, "rate", line_no)?)
                                .ok_or_else(|| err(line_no, "bad rate"))?,
                            len: len()?,
                        },
                        "poisson" => SourceDef::Poisson {
                            rate: parse_rate(get(&map, "rate", line_no)?)
                                .ok_or_else(|| err(line_no, "bad rate"))?,
                            len: len()?,
                            seed: seed()?,
                        },
                        "burst" => SourceDef::Burst {
                            count: get(&map, "count", line_no)?
                                .parse()
                                .map_err(|_| err(line_no, "bad count"))?,
                            len: len()?,
                            at: SimTime::ZERO
                                + match map.get("at") {
                                    Some(a) => {
                                        parse_duration(a).ok_or_else(|| err(line_no, "bad at"))?
                                    }
                                    None => SimDuration::ZERO,
                                },
                        },
                        "onoff" => SourceDef::OnOff {
                            on: parse_duration(get(&map, "on", line_no)?)
                                .ok_or_else(|| err(line_no, "bad on"))?,
                            off: parse_duration(get(&map, "off", line_no)?)
                                .ok_or_else(|| err(line_no, "bad off"))?,
                            interval: parse_duration(get(&map, "interval", line_no)?)
                                .ok_or_else(|| err(line_no, "bad interval"))?,
                            len: len()?,
                        },
                        "vbr" => SourceDef::Vbr {
                            rate: parse_rate(get(&map, "rate", line_no)?)
                                .ok_or_else(|| err(line_no, "bad rate"))?,
                            len: len()?,
                            seed: seed()?,
                        },
                        other => return Err(err(line_no, format!("unknown source `{other}`"))),
                    };
                    flows.push(FlowDef {
                        id,
                        weight,
                        source,
                        deadline,
                    });
                }
                "horizon" => {
                    let d = rest
                        .first()
                        .and_then(|s| parse_duration(s))
                        .ok_or_else(|| err(line_no, "bad horizon"))?;
                    horizon = Some(SimTime::ZERO + d);
                }
                other => return Err(err(line_no, format!("unknown directive `{other}`"))),
            }
        }
        Ok(Scenario {
            link: link.ok_or_else(|| err(0, "missing `link` directive"))?,
            fc_delta_bits,
            sched: sched.ok_or_else(|| err(0, "missing `sched` directive"))?,
            flows,
            horizon: horizon.ok_or_else(|| err(0, "missing `horizon` directive"))?,
        })
    }

    /// Build the scheduler named by the scenario.
    pub fn build_scheduler(&self) -> Result<Box<dyn Scheduler>, ParseError> {
        let mut sched: Box<dyn Scheduler> = match self.sched.as_str() {
            "sfq" => Box::new(Sfq::new()),
            "hsfq" => Box::new(HierSfq::new()),
            "scfq" => Box::new(Scfq::new()),
            "wfq" => Box::new(Wfq::new(self.link)),
            "fqs" => Box::new(Fqs::new(self.link)),
            "vc" => Box::new(VirtualClock::new()),
            "drr" => Box::new(Drr::new()),
            "fifo" => Box::new(Fifo::new()),
            "fa" => Box::new(FairAirport::new()),
            "edd" => {
                let mut e = DelayEdd::new();
                for f in &self.flows {
                    e.add_flow_with_deadline(FlowId(f.id), f.weight, f.deadline);
                }
                return Ok(Box::new(e));
            }
            other => return Err(err(0, format!("unknown discipline `{other}`"))),
        };
        for f in &self.flows {
            sched.add_flow(FlowId(f.id), f.weight);
        }
        Ok(sched)
    }

    /// Materialize every flow's arrivals and merge them time-sorted.
    pub fn build_arrivals(&self, pf: &mut PacketFactory) -> Vec<Packet> {
        let mut lists = Vec::new();
        for f in &self.flows {
            let arr = match &f.source {
                SourceDef::Cbr { rate, len } => arrivals_until(
                    CbrSource::with_rate(SimTime::ZERO, *rate, *len),
                    self.horizon,
                ),
                SourceDef::Poisson { rate, len, seed } => arrivals_until(
                    PoissonSource::with_rate(SimTime::ZERO, *rate, *len, SimRng::new(*seed)),
                    self.horizon,
                ),
                SourceDef::Burst { count, len, at } => {
                    arrivals_until(ScriptSource::burst(*at, *count, *len), self.horizon)
                }
                SourceDef::OnOff {
                    on,
                    off,
                    interval,
                    len,
                } => arrivals_until(
                    OnOffSource::new(SimTime::ZERO, *on, *off, *interval, *len),
                    self.horizon,
                ),
                SourceDef::Vbr { rate, len, seed } => arrivals_until(
                    VbrVideoSource::new(SimTime::ZERO, *rate, *len, 30, 0.35, SimRng::new(*seed)),
                    self.horizon,
                ),
            };
            lists.push(to_packets(pf, FlowId(f.id), &arr));
        }
        merge(lists)
    }

    /// Build the server profile (constant or FC on-off).
    pub fn build_profile(&self) -> RateProfile {
        if self.fc_delta_bits == 0 {
            RateProfile::constant(self.link)
        } else {
            servers::fc_on_off(
                servers::FcParams {
                    rate: self.link,
                    delta_bits: self.fc_delta_bits,
                },
                self.horizon,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo
link rate=1mbps
sched sfq
flow id=1 weight=200kbps source=cbr rate=200kbps len=500
flow id=2 weight=100kbps source=poisson rate=100kbps len=200 seed=7
flow id=3 weight=100kbps source=burst count=10 len=1000 at=500ms
horizon 10s
";

    #[test]
    fn parses_sample() {
        let sc = Scenario::parse(SAMPLE).expect("parses");
        assert_eq!(sc.link, Rate::mbps(1));
        assert_eq!(sc.sched, "sfq");
        assert_eq!(sc.flows.len(), 3);
        assert_eq!(sc.horizon, SimTime::from_secs(10));
        match &sc.flows[2].source {
            SourceDef::Burst { count, len, at } => {
                assert_eq!(*count, 10);
                assert_eq!(*len, Bytes::new(1000));
                assert_eq!(*at, SimTime::from_millis(500));
            }
            other => panic!("wrong source: {other:?}"),
        }
    }

    #[test]
    fn units_parse() {
        assert_eq!(parse_rate("64kbps"), Some(Rate::kbps(64)));
        assert_eq!(parse_rate("2mbps"), Some(Rate::mbps(2)));
        assert_eq!(parse_rate("800bps"), Some(Rate::bps(800)));
        assert_eq!(parse_rate("800"), None);
        assert_eq!(parse_duration("10s"), Some(SimDuration::from_secs(10)));
        assert_eq!(parse_duration("250ms"), Some(SimDuration::from_millis(250)));
        assert_eq!(parse_duration("25us"), Some(SimDuration::from_micros(25)));
        assert_eq!(parse_duration("xyz"), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "link rate=1mbps\nsched sfq\nflow id=1 weight=oops source=cbr rate=1kbps len=10\nhorizon 1s\n";
        let e = Scenario::parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("weight"));
    }

    #[test]
    fn missing_directives_reported() {
        assert!(Scenario::parse("sched sfq\nhorizon 1s\n")
            .unwrap_err()
            .msg
            .contains("link"));
        assert!(Scenario::parse("link rate=1mbps\nhorizon 1s\n")
            .unwrap_err()
            .msg
            .contains("sched"));
    }

    #[test]
    fn unknown_directive_and_source_rejected() {
        assert!(Scenario::parse("frob x=1\n")
            .unwrap_err()
            .msg
            .contains("frob"));
        let bad =
            "link rate=1mbps\nsched sfq\nflow id=1 weight=1kbps source=warp len=1\nhorizon 1s\n";
        assert!(Scenario::parse(bad).unwrap_err().msg.contains("warp"));
    }

    #[test]
    fn end_to_end_run() {
        let sc = Scenario::parse(SAMPLE).expect("parses");
        let mut sched = sc.build_scheduler().expect("builds");
        let mut pf = PacketFactory::new();
        let arrivals = sc.build_arrivals(&mut pf);
        assert!(!arrivals.is_empty());
        let profile = sc.build_profile();
        let deps = servers::run_server(&mut *sched, &profile, &arrivals, sc.horizon);
        assert!(deps.len() > 100);
    }

    #[test]
    fn every_discipline_builds() {
        for name in [
            "sfq", "hsfq", "scfq", "wfq", "fqs", "vc", "drr", "fifo", "fa", "edd",
        ] {
            let text = format!(
                "link rate=1mbps\nsched {name}\nflow id=1 weight=100kbps source=cbr rate=100kbps len=200\nhorizon 1s\n"
            );
            let sc = Scenario::parse(&text).expect("parses");
            let _ = sc.build_scheduler().expect("builds");
        }
        let sc = Scenario::parse(
            "link rate=1mbps\nsched nope\nflow id=1 weight=1kbps source=cbr rate=1kbps len=10\nhorizon 1s\n",
        )
        .expect("parses");
        assert!(sc.build_scheduler().is_err());
    }
}
