//! `sfqsim` — run a scheduling scenario file and report per-flow
//! statistics.
//!
//! ```sh
//! cargo run --release --bin sfqsim -- scenarios/demo.sfq
//! cargo run --release --bin sfqsim -- --compare scenarios/demo.sfq
//! ```
//!
//! `--compare` runs the same scenario under every discipline and
//! prints a side-by-side delay table. See `src/scenario.rs` for the
//! file format.

use sfq_repro::prelude::*;
use sfq_repro::scenario::Scenario;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (compare, path) = match args.as_slice() {
        [p] => (false, p.clone()),
        [flag, p] if flag == "--compare" => (true, p.clone()),
        _ => {
            eprintln!("usage: sfqsim [--compare] <scenario-file>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sfqsim: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match Scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sfqsim: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if compare {
        run_compare(&text, &scenario)
    } else {
        run_one(&scenario)
    }
}

fn run_one(scenario: &Scenario) -> ExitCode {
    let mut sched = match scenario.build_scheduler() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sfqsim: {e}");
            return ExitCode::from(1);
        }
    };
    let mut pf = PacketFactory::new();
    let arrivals = scenario.build_arrivals(&mut pf);
    let profile = scenario.build_profile();
    let deps = run_server(&mut *sched, &profile, &arrivals, scenario.horizon);
    println!(
        "scenario: {} on {} ({} arrivals, {} served, horizon {})",
        sched.name(),
        scenario.link,
        arrivals.len(),
        deps.len(),
        scenario.horizon,
    );
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>14} {:>14}",
        "flow", "pkts", "thpt Kb/s", "avg delay ms", "p99 delay ms", "max delay ms"
    );
    for f in &scenario.flows {
        let flow = FlowId(f.id);
        let delays = packet_delays(&deps, flow);
        match DelaySummary::from_durations(&delays) {
            Some(s) => println!(
                "{:<6} {:>10} {:>12.1} {:>14.3} {:>14.3} {:>14.3}",
                f.id,
                s.count,
                throughput_bps(&deps, flow, SimTime::ZERO, scenario.horizon) / 1e3,
                s.mean_s * 1e3,
                s.p99_s * 1e3,
                s.max_s * 1e3,
            ),
            None => println!("{:<6} {:>10}", f.id, 0),
        }
    }
    ExitCode::SUCCESS
}

fn run_compare(text: &str, base: &Scenario) -> ExitCode {
    println!(
        "comparing disciplines on {} flows, link {}, horizon {}",
        base.flows.len(),
        base.link,
        base.horizon
    );
    println!(
        "{:<6} {:>12} {:>14} {:>14} {:>16}",
        "sched", "served", "avg delay ms", "max delay ms", "fairness gap s*"
    );
    for name in ["sfq", "scfq", "wfq", "fqs", "vc", "drr", "fa", "fifo"] {
        // Re-parse with the discipline swapped so each run is fresh.
        let replaced: String = text
            .lines()
            .map(|l| {
                if l.trim_start().starts_with("sched") {
                    format!("sched {name}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let sc = Scenario::parse(&replaced).expect("same text reparses");
        let mut sched = sc.build_scheduler().expect("known discipline");
        let mut pf = PacketFactory::new();
        let arrivals = sc.build_arrivals(&mut pf);
        let profile = sc.build_profile();
        let deps = run_server(&mut *sched, &profile, &arrivals, sc.horizon);
        let mut all = Vec::new();
        for f in &sc.flows {
            all.extend(packet_delays(&deps, FlowId(f.id)));
        }
        let s = DelaySummary::from_durations(&all);
        let gap = if sc.flows.len() >= 2 {
            max_fairness_gap(
                &deps,
                FlowId(sc.flows[0].id),
                sc.flows[0].weight,
                FlowId(sc.flows[1].id),
                sc.flows[1].weight,
                SimTime::ZERO,
                sc.horizon,
            )
            .to_f64()
        } else {
            0.0
        };
        match s {
            Some(s) => println!(
                "{:<6} {:>12} {:>14.3} {:>14.3} {:>16.3}",
                name,
                s.count,
                s.mean_s * 1e3,
                s.max_s * 1e3,
                gap
            ),
            None => println!("{name:<6} {:>12}", 0),
        }
    }
    println!("* gap between the first two flows over the whole run (only meaningful\n  while both are backlogged).");
    ExitCode::SUCCESS
}
