//! # sfq-repro — reproduction of *Start-time Fair Queuing* (SIGCOMM '96)
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! - [`core`]: SFQ, hierarchical SFQ, Fair Airport, and the
//!   shared [`sfq_core::Scheduler`] trait,
//! - [`baselines`]: WFQ/PGPS, FQS, SCFQ, Virtual Clock, DRR, Delay EDD,
//!   FIFO,
//! - [`servers`]: constant / Fluctuation Constrained / EBF rate
//!   profiles and the exact single-server harness,
//! - [`traffic`]: CBR, Poisson, on-off, scripted, leaky-bucket, and
//!   synthetic MPEG VBR sources,
//! - [`netsim`]: the Figure 1 network simulator with TCP Reno and the
//!   Section 2.4 tandem,
//! - [`analysis`]: fairness/delay metrics and the paper's analytic
//!   bounds,
//! - [`obs`]: scheduler observability — event tracing and per-flow
//!   metrics attachable to any scheduler,
//! - [`des`] / [`simtime`]: the deterministic event engine and exact
//!   arithmetic substrate.
//!
//! ## Quickstart
//!
//! ```
//! use sfq_repro::prelude::*;
//!
//! // Two flows, 2:1 weights, both backlogged on a 1 Mb/s link.
//! let mut sched = Sfq::new();
//! sched.add_flow(FlowId(1), Rate::kbps(200));
//! sched.add_flow(FlowId(2), Rate::kbps(100));
//! let mut pf = PacketFactory::new();
//! let mut arrivals = Vec::new();
//! for _ in 0..300 {
//!     arrivals.push(pf.make(FlowId(1), Bytes::new(500), SimTime::ZERO));
//!     arrivals.push(pf.make(FlowId(2), Bytes::new(500), SimTime::ZERO));
//! }
//! let link = RateProfile::constant(Rate::mbps(1));
//! let deps = run_server(&mut sched, &link, &arrivals, SimTime::from_secs(2));
//!
//! // Theorem 1: the normalized service gap never exceeds
//! // l1/r1 + l2/r2.
//! let gap = max_fairness_gap(
//!     &deps,
//!     FlowId(1), Rate::kbps(200),
//!     FlowId(2), Rate::kbps(100),
//!     SimTime::ZERO, SimTime::from_secs(1),
//! );
//! let bound = sfq_fairness_bound(
//!     Bytes::new(500), Rate::kbps(200),
//!     Bytes::new(500), Rate::kbps(100),
//! );
//! assert!(gap <= bound);
//! ```

#![warn(missing_docs)]

pub mod scenario;

pub use analysis;
pub use baselines;
pub use des;
pub use netsim;
pub use servers;
pub use sfq_core as core;
pub use sfq_obs as obs;
pub use simtime;
pub use traffic;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use analysis::{
        max_fairness_gap, max_guarantee_violation, packet_delays, packets_by, sfq_fairness_bound,
        throughput_bps, work_in_interval, DelaySummary,
    };
    pub use baselines::{DelayEdd, Drr, Fifo, Fqs, Scfq, VirtualClock, Wfq};
    pub use des::SimRng;
    pub use netsim::{Net, SwitchCore, Tandem, TcpConfig};
    pub use servers::{fc_on_off, run_server, Departure, FcParams, RateProfile, Segment};
    pub use sfq_core::{
        Backpressure, ClassId, FairAirport, FifoBackend, FlowId, FlowMap, HierSfq, NoopObserver,
        Packet, PacketFactory, PoolStats, ScfqFast, SchedError, SchedEvent, SchedObserver,
        Scheduler, Sfq, SfqFast, TieBreak,
    };
    pub use sfq_obs::{CountingObserver, FlowMetrics, RingTracer};
    pub use simtime::{Bytes, Rate, Ratio, SimDuration, SimTime};
    pub use traffic::{
        arrivals_until, merge, to_packets, CbrSource, LeakyBucket, OnOffSource, PoissonSource,
        ScriptSource, Source, VbrVideoSource,
    };
}
