//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! a minimal wall-clock harness covering the API the benches use:
//! `Criterion` with `sample_size`/`measurement_time`/`warm_up_time`,
//! `benchmark_group` + `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for the configured
//! warm-up time (also calibrating iterations/sample), then takes
//! `sample_size` samples spread over the measurement time and reports
//! the median, minimum, and maximum ns/iteration on stdout as
//! `bench: <name> ... median <x> ns/iter`.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up (and calibration) time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self, &mut f);
        report(name, &stats);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter value (common for per-size sweeps).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let stats = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        report(&label, &stats);
        self
    }

    /// Benchmark `f` under this group, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let stats = run_bench(self.criterion, &mut f);
        report(&label, &stats);
        self
    }

    /// Finish the group (upstream flushes reports here; we report
    /// incrementally, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Timing results for one benchmark, in ns/iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample used.
    pub iters_per_sample: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<f64>,
    iters: u64,
}

enum BenchMode {
    /// Run the routine until the deadline, counting iterations.
    Calibrate { budget: Duration },
    /// Take timed samples of `iters` iterations each.
    Measure { samples_wanted: usize },
}

impl Bencher {
    /// Measure the routine (timing model described at crate level).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Calibrate { budget } => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < budget {
                    std::hint::black_box(routine());
                    n += 1;
                }
                self.iters = n.max(1);
            }
            BenchMode::Measure { samples_wanted } => {
                let iters = self.iters.max(1);
                for _ in 0..samples_wanted {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

fn run_bench(config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) -> Stats {
    // Warm-up + calibration pass: how many iterations fit the warm-up
    // budget determines the per-sample iteration count.
    let mut cal = Bencher {
        mode: BenchMode::Calibrate {
            budget: config.warm_up_time,
        },
        samples: Vec::new(),
        iters: 0,
    };
    f(&mut cal);
    let warm_ns = config.warm_up_time.as_nanos().max(1) as f64;
    let est_ns_per_iter = warm_ns / cal.iters.max(1) as f64;
    // Split the measurement budget into sample_size samples.
    let per_sample_ns = config.measurement_time.as_nanos() as f64 / config.sample_size as f64;
    let iters = (per_sample_ns / est_ns_per_iter.max(1.0)).max(1.0) as u64;

    let mut bench = Bencher {
        mode: BenchMode::Measure {
            samples_wanted: config.sample_size,
        },
        samples: Vec::new(),
        iters,
    };
    f(&mut bench);
    let mut samples = bench.samples;
    if samples.is_empty() {
        samples.push(est_ns_per_iter);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    Stats {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        iters_per_sample: iters,
    }
}

fn report(label: &str, stats: &Stats) {
    println!(
        "bench: {label:<40} median {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters/sample)",
        stats.median_ns, stats.min_ns, stats.max_ns, stats.iters_per_sample
    );
}

/// Hide a value from the optimizer (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function (named-field form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("demo");
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn stats_ordering_sane() {
        let c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10));
        let stats = run_bench(&c, &mut |b: &mut Bencher| b.iter(|| 1u64 + 1));
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert!(stats.iters_per_sample >= 1);
    }
}
