//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! the subset of the proptest API its tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `Just`, `prop::collection::vec`, `prop::option::of`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`,
//! and `TestCaseError`.
//!
//! Differences from upstream, deliberate for this repository:
//! - no shrinking: a failing case reports its generated inputs verbatim;
//! - the per-test RNG seed is a deterministic hash of the test name, so
//!   runs are reproducible and CI is stable;
//! - committed `.proptest-regressions` files *are* honoured: every
//!   `cc <hex>` line is folded to a 64-bit seed and replayed as an
//!   extra case **before** the random stream, for every property in
//!   the source file (upstream's per-file granularity). The shim still
//!   never writes such files — record new pins by hand.

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Deterministic generator used to produce test cases (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl TestRng {
    /// RNG seeded from an arbitrary label (we use the test name), so
    /// every test gets an independent, reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        Self::from_seed(fnv64(label.as_bytes()))
    }

    /// RNG with a fully specified 64-bit seed; used to replay the
    /// planted cases from `.proptest-regressions` files.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)` (`span > 0`, up to 127 bits).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % span
    }
}

/// How many cases `proptest!` runs per test (upstream `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Case count a property actually runs: the configured count, raised
/// (never lowered) by the `PROPTEST_CASES` environment variable. CI's
/// nightly job uses this to widen the sweep without touching per-test
/// configs tuned for tier-1 latency.
#[doc(hidden)]
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.parse::<u32>() {
            Ok(n) => configured.max(n),
            Err(_) => configured,
        },
        Err(_) => configured,
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Planted regression cases for the properties defined in source file
/// `file` (the caller's `file!()`): `(cc_token, seed)` pairs parsed
/// from the sibling `.proptest-regressions` file, in file order.
///
/// Upstream writes that file next to the test source as
/// `<stem>.proptest-regressions`, with one `cc <hex-token>` line per
/// persisted failure. The shim cannot reverse upstream's token into
/// its byte-exact RNG state, so it folds the token (FNV-1a, the same
/// hash behind [`TestRng::deterministic`]) into a 64-bit seed: each
/// committed line becomes one deterministic extra case that runs
/// before the random stream — committed regressions are *executed*,
/// not merely documented.
///
/// `file!()` is compiler-relative (usually workspace-relative) while
/// the test process may run anywhere, so the source file is located by
/// joining progressively shorter suffixes of `file` under the caller's
/// `CARGO_MANIFEST_DIR`; missing or unreadable regression files yield
/// an empty list.
#[doc(hidden)]
pub fn regression_seeds(manifest_dir: &str, file: &str) -> Vec<(String, u64)> {
    use std::path::{Path, PathBuf};
    let f = Path::new(file);
    let source: Option<PathBuf> = if f.is_absolute() {
        f.is_file().then(|| f.to_path_buf())
    } else {
        let comps: Vec<_> = f.components().collect();
        (0..comps.len()).find_map(|strip| {
            let mut cand = PathBuf::from(manifest_dir);
            cand.extend(&comps[strip..]);
            cand.is_file().then_some(cand)
        })
    };
    let Some(path) = source.map(|s| s.with_extension("proptest-regressions")) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue; // blank lines and `#` comments
        };
        if let Some(token) = rest.split_whitespace().next() {
            seeds.push((token.to_string(), fnv64(token.as_bytes())));
        }
    }
    seeds
}

/// Failure raised by `prop_assert!`-family macros inside a property.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values of one type (upstream `Strategy`, without
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a second strategy from it, and draw from
    /// that (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over the given non-empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].generate(rng)
    }
}

/// Box a strategy for use in a [`Union`] (helper for `prop_oneof!`).
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Size specification for collection strategies: a fixed size or a
/// half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `elem`, length from
    /// `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u128;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` half the time.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap `inner`'s values in `Some` with probability 1/2.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a property; on failure the current case
/// fails with the stringified condition (plus an optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "left = {:?}, right = {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "left = {:?}, right = {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "left = {:?}, right = {:?}", l, r);
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($arm)),+])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = $crate::effective_cases(__config.cases);
                // Committed `.proptest-regressions` pins run first,
                // each from its own token-derived RNG, so a recorded
                // failure is re-checked before any random case.
                for (__token, __seed) in
                    $crate::regression_seeds(env!("CARGO_MANIFEST_DIR"), file!())
                {
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    let mut __inputs = String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            __value
                        ));
                        let $pat = __value;
                    )+
                    let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest regression case `cc {}` failed: {}\ninputs:\n{}",
                            __token,
                            e,
                            __inputs
                        );
                    }
                }
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__cases {
                    let mut __inputs = String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            __value
                        ));
                        let $pat = __value;
                    )+
                    let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            __case + 1,
                            __cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn mapped_values_even(x in even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn option_of_mixes(o in prop::option::of(0u8..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn effective_cases_never_lowers() {
        // With or without PROPTEST_CASES set, the configured count is a
        // floor, never a ceiling.
        assert!(crate::effective_cases(64) >= 64);
        assert!(crate::effective_cases(1) >= 1);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
