//! Meta-tests for the shim's `.proptest-regressions` support: a
//! deliberately planted `cc` line in the sibling
//! `regression_meta.proptest-regressions` file must produce a case
//! that runs *before* the name-derived random stream, and a failure in
//! a planted case must name its `cc` token so the committed line can
//! be found and triaged.

use proptest::prelude::*;
use std::sync::Mutex;

/// The token committed in `regression_meta.proptest-regressions`.
const PLANTED_TOKEN: &str = "5eed00dd1e55a11ec0de000000000000000000000000000000000000000000aa";

static SEEN: Mutex<Vec<u64>> = Mutex::new(Vec::new());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Deliberately NOT `#[test]`: invoked by hand below so the SEEN
    // recording cannot race the parallel test runner.
    fn records_generated_values(x in 0u64..1_000_000) {
        SEEN.lock().unwrap().push(x);
    }

    // Fails on every input, so whichever case runs *first* produces
    // the panic — which must be the planted one.
    fn impossible(x in 0u64..10) {
        prop_assert!(x > 1_000_000, "x was {}", x);
    }
}

#[test]
fn planted_seed_runs_before_the_random_stream() {
    SEEN.lock().unwrap().clear();
    records_generated_values();
    let seen = SEEN.lock().unwrap().clone();

    let planted = prop::regression_seeds(env!("CARGO_MANIFEST_DIR"), file!());
    assert_eq!(planted.len(), 1, "exactly one planted cc line");
    let (token, seed) = &planted[0];
    assert_eq!(token, PLANTED_TOKEN);

    // One planted case, then the configured random cases.
    assert_eq!(seen.len(), 1 + prop::effective_cases(8) as usize);

    // Case 0 came from the token-derived RNG ...
    let mut planted_rng = TestRng::from_seed(*seed);
    let expected_planted = Strategy::generate(&(0u64..1_000_000), &mut planted_rng);
    assert_eq!(seen[0], expected_planted, "planted case did not run first");

    // ... and case 1 is the first draw of the usual name-derived
    // stream, i.e. planting a seed prepends to the schedule without
    // perturbing the random cases.
    let mut random_rng =
        TestRng::deterministic(concat!(module_path!(), "::records_generated_values"));
    let expected_random = Strategy::generate(&(0u64..1_000_000), &mut random_rng);
    assert_eq!(seen[1], expected_random, "random stream was perturbed");
}

#[test]
#[should_panic(expected = "proptest regression case `cc 5eed00dd1e55a11e")]
fn failing_planted_case_names_its_token() {
    impossible();
}

#[test]
fn sources_without_a_regression_file_plant_nothing() {
    // The shim's own lib has no sibling regression file.
    assert!(prop::regression_seeds(env!("CARGO_MANIFEST_DIR"), "src/lib.rs").is_empty());
    // Unresolvable paths degrade to "no planted cases", never an error.
    assert!(prop::regression_seeds(env!("CARGO_MANIFEST_DIR"), "no/such/file.rs").is_empty());
}
