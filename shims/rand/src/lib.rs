//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! the tiny subset of the `rand 0.8` API that `des::SimRng` actually
//! uses: a seedable deterministic generator (`rngs::StdRng`), the `Rng`
//! extension trait with `gen`/`gen_range`, and `SeedableRng`. The
//! generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but every consumer in this
//! repository only relies on determinism-per-seed, independence across
//! seeds, and uniformity, all of which hold.

use core::ops::Range;

/// Core interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the subset of
/// upstream's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start + x as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` (upstream `rng.gen::<T>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range (upstream `rng.gen_range(lo..hi)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator. Plays the role of
    /// upstream's `StdRng` (different stream, same contract).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
