//! Hierarchical link sharing (Section 3): a provider partitions a
//! 45 Mb/s link between two organizations; each organization splits
//! its share between a real-time and a best-effort class. As classes
//! go idle and return, the spare bandwidth is redistributed *within*
//! the right subtree first — the Floyd/Jacobson link-sharing goal the
//! hierarchical SFQ scheduler implements.
//!
//! Run with: `cargo run --release --example link_sharing`

use sfq_repro::prelude::*;

fn main() {
    let link = Rate::mbps(45);
    let mut h = HierSfq::new();
    // Organization A: 2/3 of the link. Organization B: 1/3.
    let org_a = h.add_class(h.root(), Rate::mbps(30));
    let org_b = h.add_class(h.root(), Rate::mbps(15));
    // Within each org: real-time 2x best-effort.
    h.add_flow_to(org_a, FlowId(1), Rate::mbps(20)); // A real-time
    h.add_flow_to(org_a, FlowId(2), Rate::mbps(10)); // A best-effort
    h.add_flow_to(org_b, FlowId(3), Rate::mbps(10)); // B real-time
    h.add_flow_to(org_b, FlowId(4), Rate::mbps(5)); // B best-effort

    // Phases (each 1 s):
    //   P1: all four classes backlogged.
    //   P2: A's real-time goes idle — its share must flow to A's
    //       best-effort, not to B.
    //   P3: all of org A idle — B's classes split the whole link 2:1.
    let mut pf = PacketFactory::new();
    let len = Bytes::new(1_500);
    let mut arrivals = Vec::new();
    let burst =
        |pf: &mut PacketFactory, f: u32, from_ms: i128, to_ms: i128, out: &mut Vec<Packet>| {
            // More than enough packets to stay backlogged for the phase.
            let n = 4_000;
            for _ in 0..n {
                out.push(pf.make(FlowId(f), len, SimTime::from_millis(from_ms)));
            }
            let _ = to_ms;
        };
    // Flows 3 and 4 backlogged the whole 3 s.
    burst(&mut pf, 3, 0, 3_000, &mut arrivals);
    burst(&mut pf, 3, 1_000, 3_000, &mut arrivals);
    burst(&mut pf, 3, 2_000, 3_000, &mut arrivals);
    burst(&mut pf, 4, 0, 3_000, &mut arrivals);
    burst(&mut pf, 4, 1_000, 3_000, &mut arrivals);
    burst(&mut pf, 4, 2_000, 3_000, &mut arrivals);
    // Flow 1 only in phase 1; flow 2 in phases 1-2.
    burst(&mut pf, 1, 0, 1_000, &mut arrivals);
    burst(&mut pf, 2, 0, 2_000, &mut arrivals);
    burst(&mut pf, 2, 1_000, 2_000, &mut arrivals);
    arrivals.sort_by_key(|p| (p.arrival, p.uid));

    // Cap the bursts so flows 1 and 2 actually drain when their phase
    // ends: trim flow 1's and 2's arrivals to their phase budget.
    // (4000 x 1500 B = 48 Mb; at 20 Mb/s a phase consumes 20 Mb, so a
    // flow would stay backlogged past its phase. Instead of trimming,
    // we keep them backlogged and *report* shares per phase, idling
    // them by sending nothing new — so we trim to the phase budget.)
    let budget_bits = |rate_mbps: u64| rate_mbps * 1_000_000;
    let mut seen1 = 0u64;
    let mut seen2 = 0u64;
    arrivals.retain(|p| match p.flow.0 {
        1 => {
            seen1 += len.bits();
            seen1 <= budget_bits(20)
        }
        2 => {
            seen2 += len.bits();
            seen2 <= budget_bits(10) + budget_bits(30) // P1 share + P2 share
        }
        _ => true,
    });

    let profile = RateProfile::constant(link);
    let deps = run_server(&mut h, &profile, &arrivals, SimTime::from_secs(3));

    let tp = |f: u32, a_ms: i128, b_ms: i128| {
        throughput_bps(
            &deps,
            FlowId(f),
            SimTime::from_millis(a_ms),
            SimTime::from_millis(b_ms),
        ) / 1e6
    };
    println!("Hierarchical link sharing on a 45 Mb/s link (Mb/s per phase):");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8}",
        "phase", "A-rt", "A-be", "B-rt", "B-be"
    );
    for (label, a, b, expect) in [
        ("P1 all active", 50i128, 950i128, "20 / 10 / 10 / 5"),
        ("P2 A-rt idle", 1_100, 1_950, "0 / 30 / 10 / 5"),
        ("P3 org A idle", 2_100, 2_950, "0 / 0 / 30 / 15"),
    ] {
        println!(
            "{:<26} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   (expect {expect})",
            label,
            tp(1, a, b),
            tp(2, a, b),
            tp(3, a, b),
            tp(4, a, b)
        );
    }

    // Sanity assertions on the redistribution structure.
    assert!(
        (tp(2, 1_100, 1_950) - 30.0).abs() < 2.0,
        "A-be should absorb A-rt's share"
    );
    assert!(
        (tp(3, 1_100, 1_950) - 10.0).abs() < 2.0,
        "B-rt unaffected by A's churn"
    );
    assert!(
        (tp(3, 2_100, 2_950) - 30.0).abs() < 2.0,
        "B-rt gets 2/3 of the link in P3"
    );
    assert!(
        (tp(4, 2_100, 2_950) - 15.0).abs() < 2.0,
        "B-be gets 1/3 of the link in P3"
    );
    println!("\nAll phase shares match the link-sharing structure.");
}
