//! End-to-end fairness across a routed network: the parking-lot
//! topology. One long TCP flow crosses three SFQ-scheduled links; each
//! link also carries a local TCP flow. With per-link fair scheduling
//! the long flow keeps its fair share at *every* hop instead of being
//! beaten down multiplicatively — the end-to-end story behind the
//! paper's Section 2.4 composition results.
//!
//! Run with: `cargo run --release --example parking_lot`

use netsim::{Mesh, SwitchCore, TcpConfig};
use sfq_repro::prelude::*;

fn link(flows: &[u32], rate: Rate) -> SwitchCore {
    let mut s = Sfq::new();
    for &f in flows {
        s.add_flow(FlowId(f), Rate::kbps(500));
    }
    SwitchCore::new(Box::new(s), RateProfile::constant(rate), Some(64))
}

fn main() {
    let c = Rate::mbps(1);
    let mut m = Mesh::new();
    // Links A, B, C in a row; flow 1 rides all three, flows 2-4 are
    // local to one link each.
    let a = m.add_link(link(&[1, 2], c), SimDuration::from_millis(1));
    let b = m.add_link(link(&[1, 3], c), SimDuration::from_millis(1));
    let cl = m.add_link(link(&[1, 4], c), SimDuration::from_millis(1));
    m.add_route(FlowId(1), vec![a, b, cl]);
    m.add_route(FlowId(2), vec![a]);
    m.add_route(FlowId(3), vec![b]);
    m.add_route(FlowId(4), vec![cl]);

    let cfg = TcpConfig::default();
    // The long flow's ACKs travel further.
    m.add_tcp_source(FlowId(1), cfg, SimDuration::from_millis(3), SimTime::ZERO);
    for f in 2..=4u32 {
        m.add_tcp_source(FlowId(f), cfg, SimDuration::from_millis(1), SimTime::ZERO);
    }

    let horizon = SimTime::from_secs(10);
    let deliveries = m.run(horizon);
    println!("Parking lot: long TCP flow over links A->B->C vs one local TCP flow per link");
    println!("{:<22} {:>10} {:>12}", "flow", "packets", "Mb/s");
    let mut rates = Vec::new();
    for (f, label) in [
        (1u32, "long (3 hops)"),
        (2, "local on A"),
        (3, "local on B"),
        (4, "local on C"),
    ] {
        let bits: u64 = deliveries
            .iter()
            .filter(|d| d.pkt.flow == FlowId(f))
            .map(|d| d.pkt.len.bits())
            .sum();
        let rate = bits as f64 / horizon.as_secs_f64() / 1e6;
        rates.push(rate);
        println!(
            "{:<22} {:>10} {:>12.3}",
            label,
            deliveries
                .iter()
                .filter(|d| d.pkt.flow == FlowId(f))
                .count(),
            rate
        );
    }
    println!(
        "\nWith SFQ at every link the long flow holds ~0.5 Mb/s — its fair share of\n\
         each 1 Mb/s bottleneck — despite competing at three places and having a\n\
         longer control loop."
    );
    assert!(rates[0] > 0.35, "long flow starved: {:.3} Mb/s", rates[0]);
    for (i, r) in rates.iter().enumerate().skip(1) {
        assert!(*r > 0.35, "local flow {i} starved: {r:.3} Mb/s");
    }
}
