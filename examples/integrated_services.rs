//! The paper's motivating scenario (Section 1.1): one link carrying
//! interactive audio, VBR video, bulk ftp, and telnet — exactly the
//! mix integrated-services networks must schedule. Compares SFQ
//! against FIFO on per-application delay and throughput.
//!
//! Run with: `cargo run --release --example integrated_services`

use sfq_repro::prelude::*;

const LINK: Rate = Rate::mbps(10);

fn workload(pf: &mut PacketFactory, horizon: SimTime) -> Vec<Packet> {
    // Flow 1 — interactive audio: 64 Kb/s CBR, 200 B packets.
    let audio = to_packets(
        pf,
        FlowId(1),
        &arrivals_until(
            CbrSource::with_rate(SimTime::ZERO, Rate::kbps(64), Bytes::new(200)),
            horizon,
        ),
    );
    // Flow 2 — VBR video: synthetic MPEG, 2 Mb/s mean, 500 B packets.
    let video = to_packets(
        pf,
        FlowId(2),
        &arrivals_until(
            VbrVideoSource::new(
                SimTime::ZERO,
                Rate::mbps(2),
                Bytes::new(500),
                30,
                0.4,
                SimRng::new(7),
            ),
            horizon,
        ),
    );
    // Flow 3 — ftp: bulk transfer pushing 8 Mb/s of 1500 B packets,
    // more than its fair share (it stays backlogged under SFQ).
    let ftp = to_packets(
        pf,
        FlowId(3),
        &arrivals_until(
            CbrSource::with_rate(SimTime::ZERO, Rate::mbps(8), Bytes::new(1500)),
            horizon,
        ),
    );
    // Flow 4 — telnet: sparse Poisson, 10 Kb/s, 64 B packets.
    let telnet = to_packets(
        pf,
        FlowId(4),
        &arrivals_until(
            PoissonSource::with_rate(
                SimTime::ZERO,
                Rate::kbps(10),
                Bytes::new(64),
                SimRng::new(8),
            ),
            horizon,
        ),
    );
    merge(vec![audio, video, ftp, telnet])
}

fn report(name: &str, deps: &[Departure], horizon: SimTime) {
    println!("\n[{name}]");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "flow", "pkts", "thpt Kb/s", "avg delay ms", "max delay ms"
    );
    for (f, label) in [(1u32, "audio"), (2, "video"), (3, "ftp"), (4, "telnet")] {
        let delays = packet_delays(deps, FlowId(f));
        let s = DelaySummary::from_durations(&delays).expect("flow served");
        println!(
            "{:<10} {:>12} {:>12.0} {:>12.3} {:>12.3}",
            label,
            s.count,
            throughput_bps(deps, FlowId(f), SimTime::ZERO, horizon) / 1e3,
            s.mean_s * 1e3,
            s.max_s * 1e3,
        );
    }
}

fn main() {
    let horizon = SimTime::from_secs(20);
    let profile = RateProfile::constant(LINK);

    // SFQ with weights matching each application's reservation; ftp
    // gets the leftovers via a generous weight but cannot hurt others.
    let mut sfq = Sfq::new();
    sfq.add_flow(FlowId(1), Rate::kbps(64));
    sfq.add_flow(FlowId(2), Rate::mbps(3));
    sfq.add_flow(FlowId(3), Rate::mbps(6));
    sfq.add_flow(FlowId(4), Rate::kbps(16));
    let mut pf = PacketFactory::new();
    let deps_sfq = run_server(&mut sfq, &profile, &workload(&mut pf, horizon), horizon);

    // FIFO baseline: one queue for everything.
    let mut fifo = Fifo::new();
    for f in 1..=4 {
        fifo.add_flow(FlowId(f), Rate::bps(1));
    }
    let mut pf = PacketFactory::new();
    let deps_fifo = run_server(&mut fifo, &profile, &workload(&mut pf, horizon), horizon);

    println!("Integrated-services link: audio + VBR video + greedy ftp + telnet on {LINK}");
    report("SFQ", &deps_sfq, horizon);
    report("FIFO", &deps_fifo, horizon);

    let audio_sfq =
        DelaySummary::from_durations(&packet_delays(&deps_sfq, FlowId(1))).expect("audio served");
    let audio_fifo =
        DelaySummary::from_durations(&packet_delays(&deps_fifo, FlowId(1))).expect("audio served");
    println!(
        "\nAudio max delay: SFQ {:.2} ms vs FIFO {:.2} ms — the greedy ftp flow \
         cannot hurt the interactive classes under SFQ.",
        audio_sfq.max_s * 1e3,
        audio_fifo.max_s * 1e3
    );
    assert!(audio_sfq.max_s < audio_fifo.max_s);
}
