//! Quickstart: schedule two flows with SFQ, inspect the schedule, and
//! verify Theorem 1's fairness bound on the measured service.
//!
//! Run with: `cargo run --release --example quickstart`

use sfq_repro::prelude::*;

fn main() {
    // 1. Create an SFQ scheduler and register two flows with 2:1
    //    weights (weights are rates in b/s; only ratios matter for
    //    fairness).
    let mut sched = Sfq::new();
    sched.add_flow(FlowId(1), Rate::kbps(200));
    sched.add_flow(FlowId(2), Rate::kbps(100));

    // 2. Mint a backlogged workload: both flows dump 300 packets of
    //    500 bytes at t = 0.
    let mut pf = PacketFactory::new();
    let mut arrivals = Vec::new();
    for _ in 0..300 {
        arrivals.push(pf.make(FlowId(1), Bytes::new(500), SimTime::ZERO));
        arrivals.push(pf.make(FlowId(2), Bytes::new(500), SimTime::ZERO));
    }

    // 3. Drain through a 1 Mb/s constant-rate server (any RateProfile
    //    works — SFQ's fairness does not depend on the server).
    let link = RateProfile::constant(Rate::mbps(1));
    let deps = run_server(&mut sched, &link, &arrivals, SimTime::from_secs(3));

    // 4. Inspect: packets delivered and throughput per flow in the
    //    first second.
    let t1 = SimTime::from_secs(1);
    for f in [1u32, 2] {
        println!(
            "flow {f}: {:4} packets by t=1s, throughput {:.0} Kb/s",
            packets_by(&deps, FlowId(f), t1),
            throughput_bps(&deps, FlowId(f), SimTime::ZERO, t1) / 1e3,
        );
    }

    // 5. Verify Theorem 1: the normalized service gap never exceeds
    //    l1/r1 + l2/r2 over any backlogged interval.
    let gap = max_fairness_gap(
        &deps,
        FlowId(1),
        Rate::kbps(200),
        FlowId(2),
        Rate::kbps(100),
        SimTime::ZERO,
        t1,
    );
    let bound = sfq_fairness_bound(
        Bytes::new(500),
        Rate::kbps(200),
        Bytes::new(500),
        Rate::kbps(100),
    );
    println!(
        "fairness gap {:.4}s <= Theorem 1 bound {:.4}s: {}",
        gap.to_f64(),
        bound.to_f64(),
        gap <= bound
    );
    assert!(gap <= bound);
}
