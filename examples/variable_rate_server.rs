//! The headline property: SFQ stays fair when the server's rate
//! fluctuates; WFQ does not (Example 2, writ large).
//!
//! A 1 Mb/s link loses half its capacity to a higher-priority class in
//! alternating windows. Flow 1 hogs the link early; flow 2 joins
//! late. WFQ, computing virtual time against the nominal capacity,
//! lets flow 1's stale backlog shut flow 2 out; SFQ splits service
//! evenly from the moment flow 2 arrives.
//!
//! Run with: `cargo run --release --example variable_rate_server`

use sfq_repro::prelude::*;

fn main() {
    let nominal = Rate::mbps(1);
    // Actual capacity: drops to 250 Kb/s for the first 2 s (priority
    // traffic, CPU contention, a wireless fade — take your pick),
    // then recovers.
    let profile = RateProfile::from_segments(vec![
        Segment {
            start: SimTime::ZERO,
            rate: Rate::kbps(250),
        },
        Segment {
            start: SimTime::from_secs(2),
            rate: nominal,
        },
    ]);
    let len = Bytes::new(1_250); // 10,000 bits
    let weight = Rate::kbps(500);

    let run = |sched: &mut dyn Scheduler| {
        sched.add_flow(FlowId(1), weight);
        sched.add_flow(FlowId(2), weight);
        let mut pf = PacketFactory::new();
        let mut arrivals = Vec::new();
        // Flow 1: 400 packets at t=0 (4 Mb backlog).
        for _ in 0..400 {
            arrivals.push(pf.make(FlowId(1), len, SimTime::ZERO));
        }
        // Flow 2: joins at t=2s with its own 4 Mb backlog.
        for _ in 0..400 {
            arrivals.push(pf.make(FlowId(2), len, SimTime::from_secs(2)));
        }
        arrivals.sort_by_key(|p| (p.arrival, p.uid));
        run_server(&mut *sched, &profile, &arrivals, SimTime::from_secs(6))
    };

    let mut wfq = Wfq::new(nominal);
    let deps_wfq = run(&mut wfq);
    let mut sfq = Sfq::new();
    let deps_sfq = run(&mut sfq);

    println!("Both flows backlogged during [2 s, 6 s]; capacity 1 Mb/s there.");
    println!(
        "{:<6} {:>16} {:>16} {:>18}",
        "sched", "flow1 Kb/s", "flow2 Kb/s", "flow2 pkts in 1st s"
    );
    for (name, deps) in [("WFQ", &deps_wfq), ("SFQ", &deps_sfq)] {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(6);
        let first_s = packets_by(deps, FlowId(2), SimTime::from_secs(3));
        println!(
            "{:<6} {:>16.0} {:>16.0} {:>18}",
            name,
            throughput_bps(deps, FlowId(1), a, b) / 1e3,
            throughput_bps(deps, FlowId(2), a, b) / 1e3,
            first_s,
        );
    }

    let wfq2 = throughput_bps(
        &deps_wfq,
        FlowId(2),
        SimTime::from_secs(2),
        SimTime::from_secs(6),
    );
    let sfq2 = throughput_bps(
        &deps_sfq,
        FlowId(2),
        SimTime::from_secs(2),
        SimTime::from_secs(6),
    );
    println!(
        "\nFlow 2's share of the recovered link: WFQ {:.0}% vs SFQ {:.0}% — \
         WFQ charges flow 2 for virtual time that never corresponded to real \
         capacity; SFQ's self-clocked tags cannot drift from the real schedule.",
        100.0 * wfq2 / 1e6,
        100.0 * sfq2 / 1e6,
    );
    assert!(sfq2 > wfq2 * 1.3);
}
