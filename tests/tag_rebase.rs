//! Virtual-time rebasing (see `docs/robustness.md`).
//!
//! SFQ/SCFQ tags grow monotonically with the server's lifetime: after
//! enough work the exact `i128` rationals hit their range edge and tag
//! arithmetic fails. Rebasing subtracts the *integer part* of the
//! current virtual time from every live tag at busy-period boundaries
//! (and eagerly past a magnitude threshold). Because Eqs. 4/5 are built
//! from `max`, `+`, comparisons, and the pico-grid snap — all of which
//! commute exactly with an integer shift — rebasing must be
//! *observationally invisible*: identical dequeue order and identical
//! observer-visible normalized-service metrics, bit for bit.
//!
//! Two angles:
//!  - a proptest forcing a rebase attempt on every enqueue
//!    (`threshold_bits = 0`) against an un-rebased twin,
//!  - a deterministic overflow witness: a flow mix that drives the
//!    un-rebased seed scheduler into `TagOverflow` while the rebased
//!    scheduler survives the identical input.

use proptest::prelude::*;
use sfq_repro::prelude::*;

/// Drive `sched` exactly like the single-server harness does for one
/// operation: dequeue (completing any in-flight service first).
fn serve_step<S: Scheduler>(sched: &mut S, in_service: &mut bool) -> Option<u64> {
    if *in_service {
        sched.on_departure(SimTime::ZERO);
        *in_service = false;
    }
    let p = sched.dequeue(SimTime::ZERO)?;
    *in_service = true;
    Some(p.uid)
}

fn drain<S: Scheduler>(sched: &mut S, in_service: &mut bool) -> Vec<u64> {
    let mut uids = Vec::new();
    while let Some(uid) = serve_step(sched, in_service) {
        uids.push(uid);
    }
    sched.on_departure(SimTime::ZERO);
    *in_service = false;
    uids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forced rebasing (threshold 0: a rebase attempt on every enqueue,
    /// plus the always-on busy-period rebase) is bit-invisible: same
    /// dequeue uid sequence, same exact per-flow normalized service,
    /// same Theorem 1 pairwise spread watermarks.
    #[test]
    fn forced_rebase_is_observationally_invisible(
        ops in prop::collection::vec((0u8..5, 0u32..3, 64u64..1500), 1..120),
    ) {
        let mut plain = Sfq::with_observer(TieBreak::Fifo, FlowMetrics::new());
        let mut rebased = Sfq::with_observer(TieBreak::Fifo, FlowMetrics::new());
        rebased.enable_rebasing(0);
        for f in 0..3u32 {
            let w = Rate::bps(1_000 + 613 * f as u64);
            plain.add_flow(FlowId(f + 1), w);
            rebased.add_flow(FlowId(f + 1), w);
        }
        let mut pf_a = PacketFactory::new();
        let mut pf_b = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let (mut busy_a, mut busy_b) = (false, false);

        // Prologue: complete one busy period so v(t) has a positive
        // integer part — guarantees at least one real rebase below.
        for (s, pf, busy) in [
            (&mut plain, &mut pf_a, &mut busy_a),
            (&mut rebased, &mut pf_b, &mut busy_b),
        ] {
            s.enqueue(t0, pf.make(FlowId(1), Bytes::new(250), t0));
            let _ = serve_step(s, busy);
            s.on_departure(t0);
            *busy = false;
        }

        for (kind, f, len) in ops {
            match kind {
                0..=2 => {
                    let flow = FlowId(f + 1);
                    let pa = pf_a.make(flow, Bytes::new(len), t0);
                    let pb = pf_b.make(flow, Bytes::new(len), t0);
                    prop_assert_eq!(pa.uid, pb.uid);
                    plain.enqueue(t0, pa);
                    rebased.enqueue(t0, pb);
                }
                _ => {
                    let a = serve_step(&mut plain, &mut busy_a);
                    let b = serve_step(&mut rebased, &mut busy_b);
                    prop_assert_eq!(a, b, "dequeue order diverged under rebasing");
                }
            }
            prop_assert_eq!(plain.len(), rebased.len());
        }
        let tail_a = drain(&mut plain, &mut busy_a);
        let tail_b = drain(&mut rebased, &mut busy_b);
        prop_assert_eq!(tail_a, tail_b, "drain order diverged under rebasing");
        prop_assert!(rebased.rebases() > 0, "forced rebasing never fired");
        prop_assert_eq!(plain.rebases(), 0);

        // Observer-visible metrics are bit-identical.
        let ma = plain.into_observer();
        let mb = rebased.into_observer();
        for f in 1..=3u32 {
            prop_assert_eq!(
                ma.normalized_service(FlowId(f)),
                mb.normalized_service(FlowId(f)),
                "normalized service diverged for flow {}", f
            );
        }
        for a in 1..=3u32 {
            for b in (a + 1)..=3u32 {
                prop_assert_eq!(
                    ma.worst_spread_between(FlowId(a), FlowId(b)),
                    mb.worst_spread_between(FlowId(a), FlowId(b)),
                    "Theorem 1 spread watermark diverged for pair ({}, {})", a, b
                );
            }
        }
    }

    /// SCFQ's rebasing is the same construction (finish-tag key instead
    /// of start-tag): forced rebasing must not change its dequeue order.
    #[test]
    fn scfq_forced_rebase_preserves_order(
        ops in prop::collection::vec((0u8..5, 0u32..3, 64u64..1500), 1..120),
    ) {
        let mut plain = Scfq::new();
        let mut rebased = Scfq::new();
        rebased.enable_rebasing(0);
        for f in 0..3u32 {
            let w = Rate::bps(1_000 + 613 * f as u64);
            plain.add_flow(FlowId(f + 1), w);
            rebased.add_flow(FlowId(f + 1), w);
        }
        let mut pf_a = PacketFactory::new();
        let mut pf_b = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let (mut busy_a, mut busy_b) = (false, false);
        for (kind, f, len) in ops {
            match kind {
                0..=2 => {
                    let flow = FlowId(f + 1);
                    plain.enqueue(t0, pf_a.make(flow, Bytes::new(len), t0));
                    rebased.enqueue(t0, pf_b.make(flow, Bytes::new(len), t0));
                }
                _ => {
                    let a = serve_step(&mut plain, &mut busy_a);
                    let b = serve_step(&mut rebased, &mut busy_b);
                    prop_assert_eq!(a, b, "SCFQ dequeue order diverged under rebasing");
                }
            }
        }
        let tail_a = drain(&mut plain, &mut busy_a);
        let tail_b = drain(&mut rebased, &mut busy_b);
        prop_assert_eq!(tail_a, tail_b);
    }
}

/// The deterministic overflow witness. Three flows conspire against the
/// exact arithmetic:
///
///  1. a 1 b/s "driver" flow sends one 3 GB packet, pumping the
///     post-busy-period virtual time to the integer `V0 = 2.4e10`;
///  2. a flow weighted at the largest prime below `10^12` contributes a
///     coprime fractional part, so `v(t)` becomes `V0 + 1000/W2` — a
///     rational with a ~`10^12` denominator that the pico-grid snap
///     leaves untouched and a ~`2.4e22` numerator;
///  3. a flow weighted at the largest prime below `2^63` then arrives:
///     its Eq. 5 finish tag needs numerator ~`2.4e22 * 9.2e18 ≈ 2e41`,
///     which no `i128` holds.
///
/// The un-rebased seed scheduler fails exactly there — `try_enqueue`
/// reports [`SchedError::TagOverflow`] with state untouched, and the
/// panicking wrapper dies with the same message. The rebased scheduler
/// subtracts `V0` at the driver's busy-period boundary, so the same
/// arrival sequence stays ~40 bits below the edge and completes with
/// the identical service order.
#[test]
fn overflow_witness_unrebased_fails_rebased_survives() {
    const W2: u64 = 999_999_999_989; // largest prime < 10^12
    const W3: u64 = 9_223_372_036_854_775_783; // largest prime < 2^63
    let t0 = SimTime::ZERO;

    let build = |rebase: bool| {
        let mut s = Sfq::new();
        if rebase {
            s.enable_rebasing(0);
        }
        s.add_flow(FlowId(1), Rate::bps(1));
        s.add_flow(FlowId(2), Rate::bps(W2));
        s.add_flow(FlowId(3), Rate::bps(W3));
        s
    };
    let run_prefix = |s: &mut Sfq, pf: &mut PacketFactory| -> Vec<u64> {
        let mut served = Vec::new();
        // Driver: one 3 GB packet at 1 b/s => F = 8 * 3e9 = 2.4e10.
        s.enqueue(t0, pf.make(FlowId(1), Bytes::new(3_000_000_000), t0));
        served.push(s.dequeue(t0).unwrap().uid);
        s.on_departure(t0); // busy period ends: v = 2.4e10 (rebased: 0)
                            // Prime-weight flow: adds the coprime fractional part 1000/W2.
        s.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
        served.push(s.dequeue(t0).unwrap().uid);
        s.on_departure(t0);
        served
    };

    // Un-rebased: the third flow's arrival overflows, fallibly...
    let mut plain = build(false);
    let mut pf = PacketFactory::new();
    let prefix_plain = run_prefix(&mut plain, &mut pf);
    let victim = pf.make(FlowId(3), Bytes::new(125), t0);
    assert_eq!(
        plain.try_enqueue(t0, victim),
        Err(SchedError::TagOverflow),
        "un-rebased scheduler must hit the i128 edge"
    );
    // ...with scheduler state untouched by the refused arrival.
    assert!(plain.is_empty());
    assert_eq!(plain.backlog(FlowId(3)), 0);
    assert_eq!(plain.flow_last_finish(FlowId(3)), Some(Ratio::ZERO));
    assert_eq!(plain.rebases(), 0);

    // ...and the panicking wrapper reports the same failure.
    let mut panicking = build(false);
    let mut pf2 = PacketFactory::new();
    let _ = run_prefix(&mut panicking, &mut pf2);
    let victim2 = pf2.make(FlowId(3), Bytes::new(125), t0);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        panicking.enqueue(t0, victim2);
    }))
    .expect_err("panicking enqueue must die at the overflow edge");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("tag arithmetic overflow"),
        "unexpected panic message: {msg}"
    );

    // Rebased: the identical arrival sequence survives, with the same
    // service order on the shared prefix.
    let mut rebased = build(true);
    let mut pf3 = PacketFactory::new();
    let prefix_rebased = run_prefix(&mut rebased, &mut pf3);
    assert_eq!(prefix_plain, prefix_rebased, "prefix order diverged");
    let survivor = pf3.make(FlowId(3), Bytes::new(125), t0);
    assert_eq!(rebased.try_enqueue(t0, survivor), Ok(()));
    assert_eq!(rebased.dequeue(t0).map(|p| p.uid), Some(survivor.uid));
    rebased.on_departure(t0);
    assert!(rebased.is_empty());
    assert!(rebased.rebases() > 0, "the driver rebase never fired");
    // Rebasing keeps the live tag state tiny: the whole 2.4e10 virtual
    // span collapsed to the sub-unit fractional residue.
    assert!(rebased.virtual_time() < Ratio::ONE);
}
