//! Property tests for Theorem 1: on ANY server (constant or
//! fluctuating), over any interval in which two flows are both
//! backlogged, SFQ keeps
//! `|W_f/r_f − W_m/r_m| <= l_f^max/r_f + l_m^max/r_m`.
//!
//! The same property (with the same bound) is checked for SCFQ, the
//! flat hierarchical scheduler, and Fair Airport (with its larger
//! Theorem 8 bound).

use proptest::prelude::*;
use sfq_repro::prelude::*;

/// Build a two-flow workload in which both flows are backlogged from
/// t = 0 until at least the returned `busy_until` (we keep offered
/// load far above capacity for the horizon).
fn backlogged_workload(pf: &mut PacketFactory, lens1: &[u64], lens2: &[u64]) -> Vec<Packet> {
    let mut arrivals = Vec::new();
    for &l in lens1 {
        arrivals.push(pf.make(FlowId(1), Bytes::new(l), SimTime::ZERO));
    }
    for &l in lens2 {
        arrivals.push(pf.make(FlowId(2), Bytes::new(l), SimTime::ZERO));
    }
    arrivals.sort_by_key(|p| p.uid);
    arrivals
}

/// Interval end while both flows are certainly still backlogged: total
/// per-flow bits / (full link rate) is a safe lower bound on each
/// flow's drain time; take half of the smaller one.
fn safe_backlog_end(lens1: &[u64], lens2: &[u64], link_bps: u64) -> SimTime {
    let bits = |ls: &[u64]| ls.iter().map(|l| l * 8).sum::<u64>();
    let t = bits(lens1).min(bits(lens2)) / link_bps;
    SimTime::from_secs((t as i128 / 2).max(1))
}

#[allow(clippy::too_many_arguments)] // test harness: one knob per paper parameter
fn check_fairness<S: Scheduler>(
    mut sched: S,
    lens1: Vec<u64>,
    lens2: Vec<u64>,
    r1: u64,
    r2: u64,
    profile: &RateProfile,
    link_bps: u64,
    bound_scale: Ratio,
    extra_bound: Ratio,
) -> Result<(), TestCaseError> {
    let (w1, w2) = (Rate::bps(r1), Rate::bps(r2));
    sched.add_flow(FlowId(1), w1);
    sched.add_flow(FlowId(2), w2);
    let mut pf = PacketFactory::new();
    let arrivals = backlogged_workload(&mut pf, &lens1, &lens2);
    let horizon = SimTime::from_secs(100_000);
    let deps = run_server(&mut sched, profile, &arrivals, horizon);
    let until = safe_backlog_end(&lens1, &lens2, link_bps);
    let gap = max_fairness_gap(&deps, FlowId(1), w1, FlowId(2), w2, SimTime::ZERO, until);
    let l1 = *lens1.iter().max().expect("non-empty");
    let l2 = *lens2.iter().max().expect("non-empty");
    let bound =
        sfq_fairness_bound(Bytes::new(l1), w1, Bytes::new(l2), w2) * bound_scale + extra_bound;
    prop_assert!(
        gap <= bound,
        "gap {gap:?} exceeds bound {bound:?} (r1={r1} r2={r2})"
    );
    Ok(())
}

fn lens() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(64u64..2000, 40..80)
}

fn weight() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1_000u64), 500u64..50_000]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sfq_constant_server(l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()) {
        let link = 16_000u64;
        check_fairness(
            Sfq::new(), l1, l2, r1, r2,
            &RateProfile::constant(Rate::bps(link)), link,
            Ratio::ONE, Ratio::ZERO,
        )?;
    }

    #[test]
    fn sfq_fluctuating_server(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight(),
        delta in 1_000u64..100_000,
    ) {
        // Theorem 1 holds regardless of server behavior: use an FC
        // profile whose rate swings between 0 and 2C.
        let link = 16_000u64;
        let profile = fc_on_off(
            FcParams { rate: Rate::bps(link), delta_bits: delta },
            SimTime::from_secs(20_000),
        );
        // Conservative backlog window: the FC server does at least
        // C*t - delta work, so halving again is safe.
        check_fairness(
            Sfq::new(), l1, l2, r1, r2, &profile, link * 2,
            Ratio::ONE, Ratio::ZERO,
        )?;
    }

    #[test]
    fn scfq_constant_server(l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()) {
        let link = 16_000u64;
        check_fairness(
            Scfq::new(), l1, l2, r1, r2,
            &RateProfile::constant(Rate::bps(link)), link,
            Ratio::ONE, Ratio::ZERO,
        )?;
    }

    #[test]
    fn hier_flat_constant_server(l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()) {
        let link = 16_000u64;
        check_fairness(
            HierSfq::new(), l1, l2, r1, r2,
            &RateProfile::constant(Rate::bps(link)), link,
            Ratio::ONE, Ratio::ZERO,
        )?;
    }

    #[test]
    fn fair_airport_constant_server(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()
    ) {
        // Theorem 8: 3(l1/r1 + l2/r2) + 2*beta, beta = lmax/C.
        let link = 16_000u64;
        let lmax = 2_000u64;
        let beta = Ratio::new((lmax * 8) as i128, link as i128);
        check_fairness(
            FairAirport::new(), l1, l2, r1, r2,
            &RateProfile::constant(Rate::bps(link)), link,
            Ratio::from_int(3), beta * Ratio::from_int(2),
        )?;
    }

    /// Theorem 1 with per-class weights inside a hierarchy: two flows in
    /// the same class must stay fair relative to each other even while a
    /// sibling class churns on and off.
    #[test]
    fn sfq_subclass_fairness_with_churning_sibling(
        l1 in lens(), l2 in lens(),
        r1 in weight(), r2 in weight(),
        burst in 5u64..40,
    ) {
        let link = 16_000u64;
        let mut h = HierSfq::new();
        let a = h.add_class(h.root(), Rate::bps(1_000));
        h.add_flow_to(a, FlowId(1), Rate::bps(r1));
        h.add_flow_to(a, FlowId(2), Rate::bps(r2));
        h.add_flow_to(h.root(), FlowId(3), Rate::bps(1_000));
        let mut pf = PacketFactory::new();
        let mut arrivals = backlogged_workload(&mut pf, &l1, &l2);
        // Sibling sends periodic bursts, modulating A's service rate.
        for k in 0..burst {
            for _ in 0..5 {
                arrivals.push(pf.make(
                    FlowId(3),
                    Bytes::new(1_000),
                    SimTime::from_secs(k as i128 * 7),
                ));
            }
        }
        arrivals.sort_by_key(|p| (p.arrival, p.uid));
        let deps = run_server(
            &mut h,
            &RateProfile::constant(Rate::bps(link)),
            &arrivals,
            SimTime::from_secs(100_000),
        );
        // Flow 1 and 2 see at worst a halved rate: safe window halves.
        let until = safe_backlog_end(&l1, &l2, link * 2);
        let gap = max_fairness_gap(
            &deps, FlowId(1), Rate::bps(r1), FlowId(2), Rate::bps(r2),
            SimTime::ZERO, until,
        );
        let b = sfq_fairness_bound(
            Bytes::new(*l1.iter().max().unwrap()), Rate::bps(r1),
            Bytes::new(*l2.iter().max().unwrap()), Rate::bps(r2),
        );
        prop_assert!(gap <= b, "gap {gap:?} > bound {b:?}");
    }
}
