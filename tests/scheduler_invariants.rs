//! Cross-discipline invariants that any correct work-conserving packet
//! scheduler must satisfy, property-tested over random workloads:
//!
//! - conservation: every arrival eventually departs, exactly once,
//! - work conservation: the server is never idle while packets queue,
//! - per-flow FIFO: a flow's packets depart in arrival order,
//! - service causality: no packet starts service before it arrives.

use proptest::prelude::*;
use sfq_repro::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Workload {
    /// (flow index, arrival ms, len bytes)
    pkts: Vec<(u32, i128, u64)>,
    weights: Vec<u64>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (2usize..5).prop_flat_map(|n| {
        (
            prop::collection::vec((0u32..n as u32, 0i128..5_000, 64u64..1_500), 20..120),
            prop::collection::vec(1_000u64..100_000, n),
        )
            .prop_map(|(pkts, weights)| Workload { pkts, weights })
    })
}

fn build(pf: &mut PacketFactory, w: &Workload) -> Vec<Packet> {
    let mut pkts: Vec<(u32, i128, u64)> = w.pkts.clone();
    pkts.sort_by_key(|&(_, t, _)| t);
    pkts.iter()
        .map(|&(f, t, l)| pf.make(FlowId(f + 1), Bytes::new(l), SimTime::from_millis(t)))
        .collect()
}

fn check_invariants(
    name: &str,
    deps: &[Departure],
    arrivals: &[Packet],
) -> Result<(), TestCaseError> {
    // Conservation: every uid departs exactly once.
    let mut seen = HashMap::new();
    for d in deps {
        *seen.entry(d.pkt.uid).or_insert(0u32) += 1;
    }
    for p in arrivals {
        prop_assert_eq!(
            seen.get(&p.uid).copied().unwrap_or(0),
            1,
            "{}: packet {} served {} times",
            name,
            p.uid,
            seen.get(&p.uid).copied().unwrap_or(0)
        );
    }
    // Causality & non-overlap: departures are sequential transmissions.
    let mut prev_depart = SimTime::ZERO;
    for d in deps {
        prop_assert!(
            d.service_start >= d.pkt.arrival,
            "{name}: served before arrival"
        );
        prop_assert!(d.departure >= d.service_start);
        prop_assert!(
            d.service_start >= prev_depart,
            "{name}: overlapping transmissions"
        );
        prev_depart = d.departure;
    }
    // Work conservation: if a packet had arrived before the previous
    // departure, the next service must start exactly at that departure.
    for w in deps.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.pkt.arrival <= a.departure {
            prop_assert_eq!(
                b.service_start,
                a.departure,
                "{}: idle while {} was queued",
                name,
                b.pkt.uid
            );
        }
    }
    // Per-flow FIFO by uid (uids are minted in arrival order here).
    let mut last_uid: HashMap<FlowId, u64> = HashMap::new();
    for d in deps {
        if let Some(&prev) = last_uid.get(&d.pkt.flow) {
            prop_assert!(d.pkt.uid > prev, "{}: flow {} reordered", name, d.pkt.flow);
        }
        last_uid.insert(d.pkt.flow, d.pkt.uid);
    }
    Ok(())
}

fn run_one<S: Scheduler>(mut sched: S, w: &Workload) -> (Vec<Departure>, Vec<Packet>) {
    for (i, &wt) in w.weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(wt));
    }
    let mut pf = PacketFactory::new();
    let arrivals = build(&mut pf, w);
    let profile = RateProfile::constant(Rate::kbps(64));
    // Horizon long enough to drain everything.
    let deps = run_server(&mut sched, &profile, &arrivals, SimTime::from_secs(10_000));
    (deps, arrivals)
}

/// Regression: force-removing a backlogged flow leaves a stale entry in
/// SFQ's head-of-flow heap; `dequeue` must skip it without underflowing
/// the `len`/`backlog` counters (the seed implementation decremented
/// `queued` before checking that the popped packet's flow still
/// existed) and the remaining flows must drain completely.
#[test]
fn sfq_survives_force_removed_flow() {
    let mut s = Sfq::new();
    s.add_flow(FlowId(1), Rate::bps(1_000));
    s.add_flow(FlowId(2), Rate::bps(2_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for _ in 0..4 {
        s.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        s.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
    }
    assert_eq!(s.len(), 8);
    assert_eq!(s.force_remove_flow(FlowId(1)), 4);
    assert_eq!(s.len(), 4, "removed flow's packets discounted exactly once");
    assert_eq!(s.backlog(FlowId(1)), 0);
    // Drain: only flow 2's packets come out, in FIFO order, and the
    // counters bottom out at zero instead of underflowing.
    let mut served = Vec::new();
    while let Some(p) = s.dequeue(t0) {
        assert_eq!(p.flow, FlowId(2));
        served.push(p.uid);
        s.on_departure(t0);
    }
    assert_eq!(served.len(), 4);
    assert!(served.windows(2).all(|w| w[0] < w[1]), "flow 2 reordered");
    assert!(s.is_empty());
    assert_eq!(s.len(), 0);
    // The scheduler keeps working after the stale entries are gone.
    s.add_flow(FlowId(1), Rate::bps(1_000));
    let p = pf.make(FlowId(1), Bytes::new(125), t0);
    s.enqueue(t0, p);
    assert_eq!(s.dequeue(t0).map(|q| q.uid), Some(p.uid));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random interleavings of enqueue/dequeue/force-remove/re-register
    /// never corrupt SFQ's counters: `len()` equals the live packet
    /// count tracked externally, dequeues only yield live flows'
    /// packets, and the scheduler always drains to empty.
    #[test]
    fn sfq_force_removal_keeps_counts_exact(
        ops in prop::collection::vec((0u8..4, 0u32..3), 1..150),
    ) {
        let mut s = Sfq::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let mut live: HashMap<u32, usize> = HashMap::new();
        let mut registered = [false; 3];
        for (kind, f) in ops {
            let flow = FlowId(f + 1);
            match kind {
                0 | 1 => {
                    if !registered[f as usize] {
                        s.add_flow(flow, Rate::bps(1_000 + f as u64 * 613));
                        registered[f as usize] = true;
                    }
                    s.enqueue(t0, pf.make(flow, Bytes::new(125 + f as u64), t0));
                    *live.entry(f).or_insert(0) += 1;
                }
                2 => {
                    if let Some(p) = s.dequeue(t0) {
                        let cnt = live.get_mut(&(p.flow.0 - 1)).expect("live flow");
                        *cnt = cnt.checked_sub(1).expect("over-served flow");
                        s.on_departure(t0);
                    }
                }
                _ => {
                    let dropped = s.force_remove_flow(flow);
                    prop_assert_eq!(dropped, live.remove(&f).unwrap_or(0));
                    registered[f as usize] = false;
                }
            }
            prop_assert_eq!(s.len(), live.values().sum::<usize>());
            for f in 0..3u32 {
                prop_assert_eq!(
                    s.backlog(FlowId(f + 1)),
                    live.get(&f).copied().unwrap_or(0)
                );
            }
        }
        // Drain to empty.
        while s.dequeue(t0).is_some() {
            s.on_departure(t0);
        }
        prop_assert!(s.is_empty());
    }

    #[test]
    fn sfq_invariants(w in workload()) {
        let (deps, arr) = run_one(Sfq::new(), &w);
        check_invariants("SFQ", &deps, &arr)?;
    }

    #[test]
    fn scfq_invariants(w in workload()) {
        let (deps, arr) = run_one(Scfq::new(), &w);
        check_invariants("SCFQ", &deps, &arr)?;
    }

    #[test]
    fn wfq_invariants(w in workload()) {
        let (deps, arr) = run_one(Wfq::new(Rate::kbps(64)), &w);
        check_invariants("WFQ", &deps, &arr)?;
    }

    #[test]
    fn fqs_invariants(w in workload()) {
        let (deps, arr) = run_one(Fqs::new(Rate::kbps(64)), &w);
        check_invariants("FQS", &deps, &arr)?;
    }

    #[test]
    fn vc_invariants(w in workload()) {
        let (deps, arr) = run_one(VirtualClock::new(), &w);
        check_invariants("VC", &deps, &arr)?;
    }

    #[test]
    fn drr_invariants(w in workload()) {
        let (deps, arr) = run_one(Drr::new(), &w);
        check_invariants("DRR", &deps, &arr)?;
    }

    #[test]
    fn edd_invariants(w in workload()) {
        let mut e = DelayEdd::new();
        for (i, &wt) in w.weights.iter().enumerate() {
            e.add_flow_with_deadline(
                FlowId(i as u32 + 1),
                Rate::bps(wt),
                SimDuration::from_millis(10 + i as i128 * 17),
            );
        }
        let mut pf = PacketFactory::new();
        let arrivals = build(&mut pf, &w);
        let profile = RateProfile::constant(Rate::kbps(64));
        let deps = run_server(&mut e, &profile, &arrivals, SimTime::from_secs(10_000));
        check_invariants("EDD", &deps, &arrivals)?;
    }

    #[test]
    fn fifo_invariants(w in workload()) {
        let (deps, arr) = run_one(Fifo::new(), &w);
        check_invariants("FIFO", &deps, &arr)?;
    }

    #[test]
    fn fair_airport_invariants(w in workload()) {
        let (deps, arr) = run_one(FairAirport::new(), &w);
        check_invariants("FA", &deps, &arr)?;
    }

    #[test]
    fn hier_sfq_invariants(w in workload()) {
        let (deps, arr) = run_one(HierSfq::new(), &w);
        check_invariants("HierSFQ", &deps, &arr)?;
    }

    #[test]
    fn hier_sfq_two_level_invariants(w in workload()) {
        let mut h = HierSfq::new();
        let c1 = h.add_class(h.root(), Rate::kbps(32));
        let c2 = h.add_class(h.root(), Rate::kbps(32));
        for (i, &wt) in w.weights.iter().enumerate() {
            let parent = if i % 2 == 0 { c1 } else { c2 };
            h.add_flow_to(parent, FlowId(i as u32 + 1), Rate::bps(wt));
        }
        let mut pf = PacketFactory::new();
        let arrivals = build(&mut pf, &w);
        let profile = RateProfile::constant(Rate::kbps(64));
        let deps = run_server(&mut h, &profile, &arrivals, SimTime::from_secs(10_000));
        check_invariants("HierSFQ2", &deps, &arrivals)?;
    }

    /// Observer neutrality: attaching an observer must not perturb
    /// scheduling. Run the identical workload through each discipline
    /// bare (the `NoopObserver` default) and with live observers
    /// attached, and require bit-identical departure sequences —
    /// same uids, same service starts, same departure instants.
    #[test]
    fn observers_do_not_perturb_schedules(w in workload()) {
        let same = |a: &[Departure], b: &[Departure]| -> Result<(), TestCaseError> {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.pkt.uid, y.pkt.uid);
                prop_assert_eq!(x.service_start, y.service_start);
                prop_assert_eq!(x.departure, y.departure);
            }
            Ok(())
        };
        let obs = || (RingTracer::with_capacity(64), FlowMetrics::new());
        same(
            &run_one(Sfq::new(), &w).0,
            &run_one(Sfq::with_observer(TieBreak::default(), obs()), &w).0,
        )?;
        same(
            &run_one(Scfq::new(), &w).0,
            &run_one(Scfq::with_observer(obs()), &w).0,
        )?;
        same(
            &run_one(VirtualClock::new(), &w).0,
            &run_one(VirtualClock::with_observer(obs()), &w).0,
        )?;
        same(
            &run_one(Wfq::new(Rate::kbps(64)), &w).0,
            &run_one(Wfq::with_observer(Rate::kbps(64), obs()), &w).0,
        )?;
        same(
            &run_one(Fifo::new(), &w).0,
            &run_one(Fifo::with_observer(obs()), &w).0,
        )?;
    }

    /// The counting observer's external tally reconciles with SFQ's
    /// internal accounting at every step of a random
    /// enqueue/dequeue/force-remove/re-register interleaving —
    /// including across `force_remove_flow`, which must report its
    /// discards to the observer exactly once.
    #[test]
    fn counting_observer_reconciles_with_sfq_internals(
        ops in prop::collection::vec((0u8..4, 0u32..3), 1..150),
    ) {
        let mut s = Sfq::with_observer(TieBreak::default(), CountingObserver::new());
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let mut registered = [false; 3];
        for (kind, f) in ops {
            let flow = FlowId(f + 1);
            match kind {
                0 | 1 => {
                    if !registered[f as usize] {
                        s.add_flow(flow, Rate::bps(1_000 + f as u64 * 613));
                        registered[f as usize] = true;
                    }
                    s.enqueue(t0, pf.make(flow, Bytes::new(125 + f as u64), t0));
                }
                2 => {
                    if s.dequeue(t0).is_some() {
                        s.on_departure(t0);
                    }
                }
                _ => {
                    s.force_remove_flow(flow);
                    registered[f as usize] = false;
                }
            }
            prop_assert_eq!(s.observer().in_queue(), s.len() as u64);
            for g in 0..3u32 {
                prop_assert_eq!(
                    s.observer().flow_backlog(FlowId(g + 1)),
                    s.backlog(FlowId(g + 1)) as i64
                );
            }
        }
        while s.dequeue(t0).is_some() {
            s.on_departure(t0);
        }
        prop_assert_eq!(s.observer().in_queue(), 0);
    }

    /// Flat HierSfq and plain Sfq may break start-tag ties differently
    /// (class id vs packet uid), but their schedules must agree on the
    /// cumulative per-flow service up to tie-reordering: at every
    /// departure boundary the per-flow served-byte counts differ by at
    /// most one maximum packet.
    #[test]
    fn flat_hierarchy_equivalent_to_sfq_up_to_ties(w0 in workload()) {
        // Fix all packet lengths so tie-break differences (uid order in
        // Sfq vs class-id order in HierSfq) cannot move service
        // boundaries — only swap which equal-length packet occupies a
        // slot.
        let mut w = w0;
        let lfix = 500u64;
        for p in &mut w.pkts {
            p.2 = lfix;
        }
        let (deps_flat, _) = run_one(Sfq::new(), &w);
        let (deps_hier, _) = run_one(HierSfq::new(), &w);
        prop_assert_eq!(deps_flat.len(), deps_hier.len());
        let lmax = lfix;
        let n_flows = w.weights.len();
        let mut cum_flat = vec![0i64; n_flows + 1];
        let mut cum_hier = vec![0i64; n_flows + 1];
        for (a, b) in deps_flat.iter().zip(&deps_hier) {
            // Same service boundaries (work conservation forces it).
            prop_assert_eq!(a.departure, b.departure);
            cum_flat[a.pkt.flow.0 as usize] += a.pkt.len.as_u64() as i64;
            cum_hier[b.pkt.flow.0 as usize] += b.pkt.len.as_u64() as i64;
            for f in 1..=n_flows {
                prop_assert!(
                    (cum_flat[f] - cum_hier[f]).abs() <= 2 * lmax as i64,
                    "flow {f} diverged beyond tie slack"
                );
            }
        }
    }
}

/// Fair Airport force-removal while the victim flow is mid-service: the
/// in-flight packet already belongs to the server, the backlog is
/// discarded, stale GSQ/regulator entries are skipped lazily, and the
/// remaining flow drains completely. Reviving the flow starts a fresh
/// tag chain and regulator state.
#[test]
fn fair_airport_force_remove_mid_service_and_revive() {
    let mut fa = FairAirport::new();
    fa.add_flow(FlowId(1), Rate::bps(1_000));
    fa.add_flow(FlowId(2), Rate::bps(1_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for _ in 0..4 {
        fa.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        fa.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
    }
    // First dequeue goes to flow 1's eligible head via the GSQ.
    let served = fa.dequeue(t0).unwrap();
    assert_eq!(served.flow, FlowId(1));
    // Mid-service removal: 3 queued flow-1 packets discarded.
    assert_eq!(fa.force_remove_flow(FlowId(1)), 3);
    assert_eq!(fa.backlog(FlowId(1)), 0);
    assert_eq!(fa.len(), 4);
    fa.on_departure(t0);
    // Only flow 2 comes out, in FIFO order, despite flow 1's stale
    // GSQ announcement sitting in the heaps.
    let mut served2 = Vec::new();
    while let Some(p) = fa.dequeue(t0) {
        assert_eq!(p.flow, FlowId(2));
        served2.push(p.uid);
        fa.on_departure(t0);
    }
    assert_eq!(served2.len(), 4);
    assert!(served2.windows(2).all(|w| w[0] < w[1]));
    assert!(fa.is_empty());
    // Revive: the flow re-registers and schedules like a new flow.
    fa.add_flow(FlowId(1), Rate::bps(1_000));
    let p = pf.make(FlowId(1), Bytes::new(125), t0);
    fa.enqueue(t0, p);
    assert_eq!(fa.dequeue(t0).map(|q| q.uid), Some(p.uid));
    fa.on_departure(t0);
    assert!(fa.is_empty());
    // Removing an unknown flow is a no-op.
    assert_eq!(fa.force_remove_flow(FlowId(9)), 0);
}

/// A force-removed flow's already-admitted GSQ head must not be served:
/// its heap entry is stale (uid mismatch against a revived flow's new
/// packets) and a later dequeue skips it.
#[test]
fn fair_airport_stale_gsq_entry_never_serves_revived_flow() {
    let mut fa = FairAirport::new();
    fa.add_flow(FlowId(1), Rate::bps(1_000));
    fa.add_flow(FlowId(2), Rate::bps(1_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    // Flow 1's head is admitted to the GSQ at enqueue-time announcement;
    // force-remove before any dequeue leaves the entry stale.
    let doomed = pf.make(FlowId(1), Bytes::new(125), t0);
    fa.enqueue(t0, doomed);
    fa.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
    assert_eq!(fa.force_remove_flow(FlowId(1)), 1);
    // Revive flow 1 with a fresh packet: new uid, so the old GSQ entry
    // (if it named the flow) cannot match it.
    fa.add_flow(FlowId(1), Rate::bps(1_000));
    let fresh = pf.make(FlowId(1), Bytes::new(125), t0);
    fa.enqueue(t0, fresh);
    let mut uids = Vec::new();
    while let Some(p) = fa.dequeue(t0) {
        assert_ne!(p.uid, doomed.uid, "discarded packet served");
        uids.push(p.uid);
        fa.on_departure(t0);
    }
    assert_eq!(uids.len(), 2);
    assert!(uids.contains(&fresh.uid));
    assert!(fa.is_empty());
}

/// HierSfq force-removal fixes up the whole ancestor chain: subtree
/// backlogs shrink at every level, a class whose subtree empties leaves
/// its parent's ready set, and siblings keep scheduling normally —
/// including removal while the victim's packet is mid-service.
#[test]
fn hier_force_remove_updates_ancestors_and_survives_mid_service() {
    let mut h = HierSfq::new();
    let a = h.add_class(h.root(), Rate::bps(1_000));
    h.add_flow_to(a, FlowId(1), Rate::bps(1_000));
    h.add_flow_to(a, FlowId(2), Rate::bps(1_000));
    h.add_flow_to(h.root(), FlowId(3), Rate::bps(1_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for _ in 0..3 {
        h.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        h.enqueue(t0, pf.make(FlowId(3), Bytes::new(125), t0));
    }
    h.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
    assert_eq!(h.class_backlog(a), 4);
    // Serve one packet (flow 1 or 3 ties at S=0) and remove flow 1
    // while that service is still in flight.
    let first = h.dequeue(t0).unwrap();
    let dropped = h.force_remove_flow(FlowId(1));
    assert_eq!(
        dropped + h.backlog(FlowId(1)),
        3 - (first.flow.0 == 1) as usize
    );
    assert_eq!(h.backlog(FlowId(1)), 0);
    h.on_departure(t0);
    // Remaining service: flow 2's single packet and flow 3's rest.
    let mut order = Vec::new();
    while let Some(p) = h.dequeue(t0) {
        assert_ne!(p.flow, FlowId(1), "removed flow served");
        order.push(p.flow.0);
        h.on_departure(t0);
    }
    assert!(order.contains(&2), "sibling starved: {order:?}");
    assert!(h.is_empty());
    assert_eq!(h.class_backlog(a), 0);
    // Enqueueing for the removed flow is now a typed error; reviving it
    // attaches a fresh leaf that schedules normally.
    let orphan = pf.make(FlowId(1), Bytes::new(125), t0);
    assert_eq!(
        h.try_enqueue(t0, orphan),
        Err(sfq_repro::core::SchedError::UnknownFlow(FlowId(1)))
    );
    h.add_flow(FlowId(1), Rate::bps(1_000));
    let p = pf.make(FlowId(1), Bytes::new(125), t0);
    h.enqueue(t0, p);
    assert_eq!(h.dequeue(t0).map(|q| q.uid), Some(p.uid));
    h.on_departure(t0);
    assert_eq!(h.force_remove_flow(FlowId(9)), 0, "unknown flow no-op");
}

/// Force-removing a flow routed to a nested scheduler class delegates
/// to the inner discipline and keeps every level's subtree accounting
/// exact.
#[test]
fn hier_force_remove_delegates_to_scheduler_class() {
    let mut h = HierSfq::new();
    let mut inner = sfq_repro::core::Sfq::new();
    inner.add_flow(FlowId(1), Rate::bps(1_000));
    inner.add_flow(FlowId(2), Rate::bps(1_000));
    let class = h.add_scheduler_class(h.root(), Rate::bps(1_000), Box::new(inner));
    h.attach_configured_flow(class, FlowId(1));
    h.attach_configured_flow(class, FlowId(2));
    h.add_flow(FlowId(3), Rate::bps(1_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for _ in 0..2 {
        h.enqueue(t0, pf.make(FlowId(1), Bytes::new(125), t0));
        h.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
        h.enqueue(t0, pf.make(FlowId(3), Bytes::new(125), t0));
    }
    assert_eq!(h.class_backlog(class), 4);
    assert_eq!(h.force_remove_flow(FlowId(1)), 2);
    assert_eq!(h.class_backlog(class), 2);
    assert_eq!(h.len(), 4);
    let mut order = Vec::new();
    while let Some(p) = h.dequeue(t0) {
        assert_ne!(p.flow, FlowId(1));
        order.push(p.flow.0);
        h.on_departure(t0);
    }
    assert_eq!(order.iter().filter(|&&f| f == 2).count(), 2);
    assert_eq!(order.iter().filter(|&&f| f == 3).count(), 2);
    assert!(h.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random interleavings of enqueue/dequeue/force-remove/re-register
    /// against Fair Airport keep its counters exact (the same contract
    /// `sfq_force_removal_keeps_counts_exact` pins for SFQ, here
    /// crossing the GSQ/regulator machinery).
    #[test]
    fn fair_airport_force_removal_keeps_counts_exact(
        ops in prop::collection::vec((0u8..4, 0u32..3), 1..150),
    ) {
        let mut s = FairAirport::new();
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let mut live: HashMap<u32, usize> = HashMap::new();
        let mut registered = [false; 3];
        for (kind, f) in ops {
            let flow = FlowId(f + 1);
            match kind {
                0 | 1 => {
                    if !registered[f as usize] {
                        s.add_flow(flow, Rate::bps(1_000 + f as u64 * 613));
                        registered[f as usize] = true;
                    }
                    s.enqueue(t0, pf.make(flow, Bytes::new(125 + f as u64), t0));
                    *live.entry(f).or_insert(0) += 1;
                }
                2 => {
                    if let Some(p) = s.dequeue(t0) {
                        let cnt = live.get_mut(&(p.flow.0 - 1)).expect("live flow");
                        *cnt = cnt.checked_sub(1).expect("over-served flow");
                        s.on_departure(t0);
                    }
                }
                _ => {
                    let dropped = s.force_remove_flow(flow);
                    prop_assert_eq!(dropped, live.remove(&f).unwrap_or(0));
                    registered[f as usize] = false;
                }
            }
            prop_assert_eq!(s.len(), live.values().sum::<usize>());
            for f in 0..3u32 {
                prop_assert_eq!(
                    s.backlog(FlowId(f + 1)),
                    live.get(&f).copied().unwrap_or(0)
                );
            }
        }
        while s.dequeue(t0).is_some() {
            s.on_departure(t0);
        }
        prop_assert!(s.is_empty());
    }

    /// The same interleaving contract for HierSfq over a two-level tree
    /// (two flows under a class, one at the root).
    #[test]
    fn hier_force_removal_keeps_counts_exact(
        ops in prop::collection::vec((0u8..4, 0u32..3), 1..150),
    ) {
        let mut s = HierSfq::new();
        let class = s.add_class(s.root(), Rate::bps(2_000));
        let mut pf = PacketFactory::new();
        let t0 = SimTime::ZERO;
        let mut live: HashMap<u32, usize> = HashMap::new();
        let mut registered = [false; 3];
        for (kind, f) in ops {
            let flow = FlowId(f + 1);
            match kind {
                0 | 1 => {
                    if !registered[f as usize] {
                        if f < 2 {
                            s.add_flow_to(class, flow, Rate::bps(1_000 + f as u64 * 613));
                        } else {
                            s.add_flow(flow, Rate::bps(1_000 + f as u64 * 613));
                        }
                        registered[f as usize] = true;
                    }
                    s.enqueue(t0, pf.make(flow, Bytes::new(125 + f as u64), t0));
                    *live.entry(f).or_insert(0) += 1;
                }
                2 => {
                    if let Some(p) = s.dequeue(t0) {
                        let cnt = live.get_mut(&(p.flow.0 - 1)).expect("live flow");
                        *cnt = cnt.checked_sub(1).expect("over-served flow");
                        s.on_departure(t0);
                    }
                }
                _ => {
                    let dropped = s.force_remove_flow(flow);
                    prop_assert_eq!(dropped, live.remove(&f).unwrap_or(0));
                    registered[f as usize] = false;
                }
            }
            prop_assert_eq!(s.len(), live.values().sum::<usize>());
            for f in 0..3u32 {
                prop_assert_eq!(
                    s.backlog(FlowId(f + 1)),
                    live.get(&f).copied().unwrap_or(0)
                );
            }
        }
        while s.dequeue(t0).is_some() {
            s.on_departure(t0);
        }
        prop_assert!(s.is_empty());
    }
}
