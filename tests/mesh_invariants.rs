//! Property tests over random routed meshes: conservation (no packet
//! duplicated or invented), per-flow end-to-end FIFO, and causality
//! (delivery strictly after injection plus minimum path latency).

use netsim::{Mesh, SwitchCore};
use proptest::prelude::*;
use sfq_repro::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct MeshCase {
    n_links: usize,
    /// Flow routes as (start link, hop count).
    flows: Vec<(usize, usize)>,
    /// Packets per flow.
    pkts: usize,
}

fn mesh_case() -> impl Strategy<Value = MeshCase> {
    (2usize..6).prop_flat_map(|n_links| {
        (
            prop::collection::vec((0usize..n_links, 1usize..4), 1..6),
            10usize..60,
        )
            .prop_map(move |(flows, pkts)| MeshCase {
                n_links,
                flows,
                pkts,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_conservation_and_order(case in mesh_case()) {
        let c = Rate::mbps(1);
        let mut m = Mesh::new();
        let mut link_ids = Vec::new();
        // Build links with every flow registered everywhere (harmless).
        for _ in 0..case.n_links {
            let mut s = Sfq::new();
            for f in 0..case.flows.len() as u32 {
                s.add_flow(FlowId(f + 1), Rate::kbps(100));
            }
            link_ids.push(m.add_link(
                SwitchCore::new(Box::new(s), RateProfile::constant(c), None),
                SimDuration::from_millis(1),
            ));
        }
        // Routes: consecutive links with wraparound, clipped at the end.
        for (i, &(start, hops)) in case.flows.iter().enumerate() {
            let route: Vec<_> = (0..hops)
                .map(|h| link_ids[(start + h) % case.n_links])
                .collect();
            // Routes must not repeat a link (hop recovery is by link).
            let mut seen = std::collections::HashSet::new();
            let route: Vec<_> = route
                .into_iter()
                .take_while(|l| seen.insert(*l))
                .collect();
            m.add_route(FlowId(i as u32 + 1), route);
        }
        let mut expected = HashMap::new();
        for (i, _) in case.flows.iter().enumerate() {
            let flow = FlowId(i as u32 + 1);
            let arr: Vec<(SimTime, Bytes)> = (0..case.pkts)
                .map(|k| (SimTime::from_millis(k as i128 * 5), Bytes::new(400)))
                .collect();
            m.add_scripted_source(flow, &arr);
            expected.insert(flow, case.pkts);
        }
        let deliveries = m.run(SimTime::from_secs(600));
        // Conservation: every packet delivered exactly once.
        let mut got: HashMap<FlowId, usize> = HashMap::new();
        let mut uids = std::collections::HashSet::new();
        for d in &deliveries {
            prop_assert!(uids.insert(d.pkt.uid), "duplicate delivery");
            *got.entry(d.pkt.flow).or_insert(0) += 1;
        }
        for (flow, n) in &expected {
            prop_assert_eq!(got.get(flow).copied().unwrap_or(0), *n, "flow {} lost packets", flow);
        }
        // Per-flow end-to-end FIFO by uid.
        let mut last: HashMap<FlowId, u64> = HashMap::new();
        for d in &deliveries {
            if let Some(&prev) = last.get(&d.pkt.flow) {
                prop_assert!(d.pkt.uid > prev, "flow {} reordered", d.pkt.flow);
            }
            last.insert(d.pkt.flow, d.pkt.uid);
        }
        // Causality: delivery no earlier than injection + per-hop
        // minimum latency (tx at full rate + propagation).
        for d in &deliveries {
            prop_assert!(d.at > d.pkt.arrival || d.pkt.arrival == SimTime::ZERO);
        }
    }
}
