//! The paper's worked examples, reproduced end-to-end as exact tests.

use sfq_repro::prelude::*;

/// Example 1: flows f, m with `l^max/r = c`; f sends two full packets,
/// m sends one full and two halves, all at t = 0. Under WFQ there is a
/// valid schedule in which m receives `2 l^max` while f receives
/// nothing over `[start(m1), finish(m3)]`, showing
/// `H(f,m) >= l_f^max/r_f + l_m^max/r_m` — twice the lower bound.
#[test]
fn example1_wfq_unfairness_reaches_twice_lower_bound() {
    // Full packet 250 B, weight 1000 b/s => span 2 s, c = 2.
    let w1 = Rate::bps(1_000);
    let mut sched = Wfq::new(Rate::bps(2_000));
    sched.add_flow(FlowId(1), w1);
    sched.add_flow(FlowId(2), w1);
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    let mut arrivals = vec![
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
    ];
    arrivals.sort_by_key(|p| p.uid);
    let profile = RateProfile::constant(Rate::bps(2_000));
    let deps = run_server(&mut sched, &profile, &arrivals, SimTime::from_secs(20));
    // The served order is f1, m1, m2, then a tie at finish tag 4
    // between f2 and m3 (uid tie-break picks f2; the paper's order
    // picks m3 — both are valid WFQ schedules).
    let flows: Vec<u32> = deps.iter().map(|d| d.pkt.flow.0).collect();
    assert_eq!(&flows[..3], &[1, 2, 2]);
    // Measure the gap over m's uninterrupted service run [t1, t2] =
    // [start of m1, end of m2]: W_m = 375 B (spans 3 s), W_f = 0.
    let t1 = deps[1].service_start;
    let t2 = deps[2].departure;
    let wf = work_in_interval(&deps, FlowId(1), t1, t2);
    let wm = work_in_interval(&deps, FlowId(2), t1, t2);
    assert_eq!(wf, Bytes::ZERO);
    assert_eq!(wm, Bytes::new(375));
    // Normalized gap = 3 s; the Golestani lower bound is (2+2)/2 = 2 s:
    // WFQ exceeds the lower bound even without the adversarial
    // tie-break (the paper's tie-break reaches the full 4 s = 2x).
    let gap = max_fairness_gap(&deps, FlowId(1), w1, FlowId(2), w1, t1, t2);
    assert_eq!(gap, Ratio::from_int(3));
    assert!(gap > Ratio::from_int(2));
}

/// Example 1 under SFQ: the same workload stays within one packet of
/// parity, because service interleaves by start tags.
#[test]
fn example1_under_sfq_interleaves() {
    let w1 = Rate::bps(1_000);
    let mut sched = Sfq::new();
    sched.add_flow(FlowId(1), w1);
    sched.add_flow(FlowId(2), w1);
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    let arrivals = vec![
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
    ];
    let profile = RateProfile::constant(Rate::bps(2_000));
    let deps = run_server(&mut sched, &profile, &arrivals, SimTime::from_secs(20));
    // Start tags: f: 0, 2; m: 0, 2, 3. Order: f1, m1, f2, m2, m3.
    let flows: Vec<u32> = deps.iter().map(|d| d.pkt.flow.0).collect();
    assert_eq!(flows, vec![1, 2, 1, 2, 2]);
    let gap = max_fairness_gap(
        &deps,
        FlowId(1),
        w1,
        FlowId(2),
        w1,
        SimTime::ZERO,
        deps[3].departure,
    );
    assert!(gap <= sfq_fairness_bound(Bytes::new(250), w1, Bytes::new(250), w1));
}

/// Example 2, exactly as stated: server runs at 1 pkt/s during [0, 1)
/// and C pkt/s during [1, 2); flow f sends C+1 unit packets at t = 0,
/// flow m is backlogged during [1, 2]. WFQ gives m at most one packet;
/// fair allocation would be C/2 each.
#[test]
fn example2_exact() {
    let c = 10u64;
    let len = Bytes::new(125); // 1000 bits = "unit packet"
    let weight = Rate::bps(1_000); // 1 pkt/s
    let profile = RateProfile::from_segments(vec![
        Segment {
            start: SimTime::ZERO,
            rate: Rate::bps(1_000),
        },
        Segment {
            start: SimTime::from_secs(1),
            rate: Rate::bps(1_000 * c),
        },
    ]);
    let run = |sched: &mut dyn Scheduler| -> (Bytes, Bytes) {
        sched.add_flow(FlowId(1), weight);
        sched.add_flow(FlowId(2), weight);
        let mut pf = PacketFactory::new();
        let mut arrivals = Vec::new();
        for _ in 0..=c {
            arrivals.push(pf.make(FlowId(1), len, SimTime::ZERO));
        }
        for _ in 0..c {
            arrivals.push(pf.make(FlowId(2), len, SimTime::from_secs(1)));
        }
        let deps = run_server(&mut *sched, &profile, &arrivals, SimTime::from_secs(3));
        (
            work_in_interval(
                &deps,
                FlowId(1),
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            ),
            work_in_interval(
                &deps,
                FlowId(2),
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            ),
        )
    };
    let mut wfq = Wfq::new(Rate::bps(1_000 * c));
    let (wf, wm) = run(&mut wfq);
    // Paper: C-1 <= W_f(1,2) <= C and W_m(1,2) <= 1 (in packets).
    assert!(
        wf.as_u64() >= (c - 1) * 125 && wf.as_u64() <= c * 125,
        "{wf:?}"
    );
    assert!(wm.as_u64() <= 125, "{wm:?}");

    let mut sfq = Sfq::new();
    let (sf, sm) = run(&mut sfq);
    // Fair split: C/2 each (within one packet).
    let half = c * 125 / 2;
    assert!(sf.as_u64().abs_diff(half) <= 125, "{sf:?}");
    assert!(sm.as_u64().abs_diff(half) <= 125, "{sm:?}");
}

/// Section 2.3's residual-capacity claim: when higher-priority traffic
/// is (σ, ρ)-leaky-bucket-shaped on a constant-rate link C, the
/// residual service available to the low-priority class is FC
/// `(C − ρ, σ)` — checked by measuring the low-priority class's
/// worst-interval deficit.
#[test]
fn residual_capacity_of_priority_server_is_fc() {
    let link = Rate::kbps(100);
    let rho = Rate::kbps(40);
    let len = Bytes::new(250); // 2000 bits
    let sigma_bits = 3 * len.bits();
    // Priority: Poisson at rho shaped through (sigma, rho).
    let raw = arrivals_until(
        PoissonSource::with_rate(SimTime::ZERO, rho, len, SimRng::new(3)),
        SimTime::from_secs(120),
    );
    let shaped = LeakyBucket::new(sigma_bits, rho).shape(&raw);
    // Low priority: a single backlogged flow behind a strict-priority
    // class, modeled with the netsim switch.
    let mut sw = SwitchCore::new(Box::new(Sfq::new()), RateProfile::constant(link), None);
    sw.add_flow(FlowId(1), Rate::kbps(60));
    let mut net = Net::new(sw, SimDuration::ZERO, SimDuration::ZERO);
    net.add_scripted_source(FlowId(9), &shaped, true);
    let low: Vec<(SimTime, Bytes)> = vec![(SimTime::ZERO, Bytes::new(125)); 40_000];
    net.add_scripted_source(FlowId(1), &low, false);
    let deliveries = net.run(SimTime::from_secs(100));
    // Cumulative low-priority service must satisfy
    // W(t1,t2) >= (C - rho)(t2 - t1) - sigma - packet slack over all
    // windows (extra packets of slack for non-preemption/quantization).
    let resid = (link.as_bps() - rho.as_bps()) as f64;
    let slack = (sigma_bits + len.bits() + 125 * 8) as f64;
    let mut worst: f64 = 0.0;
    let mut min_g = 0.0f64; // g(0) = 0
    let mut acc = 0.0;
    for d in deliveries.iter().filter(|d| d.pkt.flow == FlowId(1)) {
        acc += d.pkt.len.bits() as f64;
        let g = resid * d.at.as_secs_f64() - acc;
        worst = worst.max(g - min_g);
        min_g = min_g.min(g);
    }
    assert!(
        worst <= slack,
        "residual deficit {worst} exceeds sigma-based slack {slack}"
    );
}
