//! Workload robustness: the paper's guarantees are traffic-agnostic —
//! they depend only on admission (`Σ r_n <= C`) and the EAT chain, not
//! on the arrival process. Stress them with heavy-tailed Pareto on-off
//! traffic (long-range-dependent burst structure) and confirm nothing
//! moves.

use sfq_repro::prelude::*;

/// Theorem 4 under heavy-tailed cross traffic: an admitted CBR flow's
/// delay bound must hold no matter how bursty its admitted peers are.
#[test]
fn theorem4_holds_under_pareto_cross_traffic() {
    let link = Rate::mbps(1);
    let horizon = SimTime::from_secs(120);
    let mut sched = Sfq::new();
    // Observed flow: CBR 200 Kb/s, 500 B.
    sched.add_flow(FlowId(1), Rate::kbps(200));
    // Three Pareto on-off peers, each *reserved* at 200 Kb/s (their
    // mean is ~200 Kb/s but arrivals are wildly bursty). Σr = 800k <= C.
    for f in 2..=4u32 {
        sched.add_flow(FlowId(f), Rate::kbps(200));
    }
    let mut pf = PacketFactory::new();
    let mut lists = vec![to_packets(
        &mut pf,
        FlowId(1),
        &arrivals_until(
            CbrSource::with_rate(SimTime::ZERO, Rate::kbps(200), Bytes::new(500)),
            horizon,
        ),
    )];
    for f in 2..=4u32 {
        let src = traffic::ParetoOnOffSource::new(
            SimTime::ZERO,
            SimDuration::from_millis(10), // 400 Kb/s on-rate
            Bytes::new(500),
            0.5,
            0.5,
            1.4,
            SimRng::new(900 + f as u64),
        );
        lists.push(to_packets(
            &mut pf,
            FlowId(f),
            &arrivals_until(src, horizon),
        ));
    }
    let arrivals = merge(lists);
    let deps = run_server(&mut sched, &RateProfile::constant(link), &arrivals, horizon);
    // Theorem 4 for the CBR flow: others' l_max are all 500 B.
    let term = analysis::sfq_delay_term(&[Bytes::new(500); 3], Bytes::new(500), link, 0);
    let viol = max_guarantee_violation(&deps, FlowId(1), Rate::kbps(200), term);
    assert_eq!(viol, SimDuration::ZERO, "Theorem 4 violated: {viol:?}");
    // Sanity: the Pareto peers actually sent a nontrivial load.
    for f in 2..=4u32 {
        assert!(
            deps.iter().filter(|d| d.pkt.flow == FlowId(f)).count() > 500,
            "peer {f} barely sent"
        );
    }
}

/// Theorem 1 with a Pareto peer: whenever both flows are backlogged
/// the gap stays within the bound. We create guaranteed overlap by
/// giving both flows an initial backlog dump plus their processes.
#[test]
fn fairness_bound_holds_with_pareto_peer() {
    let link = Rate::kbps(400);
    let horizon = SimTime::from_secs(200);
    let w = Rate::kbps(100);
    let mut sched = Sfq::new();
    sched.add_flow(FlowId(1), w);
    sched.add_flow(FlowId(2), w);
    let mut pf = PacketFactory::new();
    let mut arrivals = Vec::new();
    // Both flows: 200 x 500 B dumped at t = 0 (100 s of backlog at a
    // fair 200 Kb/s each... actually 800 kbit / 200 kbps = 4 s each;
    // enough for the window below).
    for _ in 0..200 {
        arrivals.push(pf.make(FlowId(1), Bytes::new(500), SimTime::ZERO));
        arrivals.push(pf.make(FlowId(2), Bytes::new(500), SimTime::ZERO));
    }
    // Flow 2 additionally runs a Pareto process afterwards.
    let src = traffic::ParetoOnOffSource::new(
        SimTime::from_secs(1),
        SimDuration::from_millis(20),
        Bytes::new(500),
        1.0,
        1.0,
        1.5,
        SimRng::new(77),
    );
    arrivals.extend(to_packets(
        &mut pf,
        FlowId(2),
        &arrivals_until(src, horizon),
    ));
    arrivals.sort_by_key(|p| (p.arrival, p.uid));
    let deps = run_server(&mut sched, &RateProfile::constant(link), &arrivals, horizon);
    // Both flows certainly backlogged during [0, 3 s] (initial dumps).
    let gap = max_fairness_gap(
        &deps,
        FlowId(1),
        w,
        FlowId(2),
        w,
        SimTime::ZERO,
        SimTime::from_secs(3),
    );
    let bound = sfq_fairness_bound(Bytes::new(500), w, Bytes::new(500), w);
    assert!(gap <= bound, "gap {gap:?} > bound {bound:?}");
}
