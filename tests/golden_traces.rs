//! Golden traces for the paper's worked examples.
//!
//! `tests/paper_examples.rs` checks the *aggregate* claims of Examples
//! 1–3 (work in interval, fairness gap). This suite pins down the
//! *exact event trace* — every `(start_tag, finish_tag, dequeue order,
//! v(t))` tuple the observability layer emits — so a refactor of the
//! tag arithmetic or the heap structure that changes semantics shows
//! up as a precise diff, not as a slightly different aggregate.
//!
//! All values below are hand-derived from Eqs. 4–5 of the paper
//! (`S(p) = max(v(A(p)), F(prev))`, `F(p) = S(p) + l/r`) and asserted
//! against the tracer's exact rational strings, never floats.

use sfq_repro::core::HierSfq;
use sfq_repro::obs::EventKind;
use sfq_repro::prelude::*;

/// `(flow, start_tag, finish_tag, v)` of every dequeue, exact.
fn dequeues(tr: &RingTracer) -> Vec<(u32, String, String, String)> {
    tr.records()
        .filter(|r| r.kind == EventKind::Dequeue)
        .map(|r| {
            (
                r.flow,
                r.start_tag_exact.clone(),
                r.finish_tag_exact.clone(),
                r.v_exact.clone(),
            )
        })
        .collect()
}

fn own(rows: &[(u32, &str, &str, &str)]) -> Vec<(u32, String, String, String)> {
    rows.iter()
        .map(|&(f, s, fin, v)| (f, s.to_string(), fin.to_string(), v.to_string()))
        .collect()
}

/// Example 1: f sends two 250 B packets, m sends 250 + 125 + 125 B,
/// all at t = 0; both weights 1000 b/s (span of a full packet: 2),
/// link 2000 b/s. SFQ tags: f: S = 0, 2; m: S = 0, 2, 3 — service
/// interleaves as f1, m1, f2, m2, m3 and v(t) steps 0, 0, 2, 2, 3.
#[test]
fn example1_sfq_golden_trace() {
    let w = Rate::bps(1_000);
    let mut sched = Sfq::with_observer(TieBreak::default(), RingTracer::with_capacity(64));
    sched.add_flow(FlowId(1), w);
    sched.add_flow(FlowId(2), w);
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    let arrivals = vec![
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(1), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(250), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
        pf.make(FlowId(2), Bytes::new(125), t0),
    ];
    let profile = RateProfile::constant(Rate::bps(2_000));
    run_server(&mut sched, &profile, &arrivals, SimTime::from_secs(20));
    let tr = sched.into_observer();

    // Enqueue events all see v = 0 (nothing served yet) and carry the
    // Eq. 4/5 tags computed at arrival.
    let enq: Vec<_> = tr
        .records()
        .filter(|r| r.kind == EventKind::Enqueue)
        .map(|r| {
            (
                r.flow,
                r.start_tag_exact.clone(),
                r.finish_tag_exact.clone(),
                r.v_exact.clone(),
            )
        })
        .collect();
    assert_eq!(
        enq,
        own(&[
            (1, "0", "2", "0"),
            (1, "2", "4", "0"),
            (2, "0", "2", "0"),
            (2, "2", "3", "0"),
            (2, "3", "4", "0"),
        ])
    );

    // Dequeue order f1, m1, f2, m2, m3; v(t) is the start tag of the
    // packet entering service.
    assert_eq!(
        dequeues(&tr),
        own(&[
            (1, "0", "2", "0"),
            (2, "0", "2", "0"),
            (1, "2", "4", "2"),
            (2, "2", "3", "2"),
            (2, "3", "4", "3"),
        ])
    );

    // Service instants on the 2000 b/s link: 250 B = 1 s, 125 B = ½ s.
    let times: Vec<f64> = tr
        .records()
        .filter(|r| r.kind == EventKind::Dequeue)
        .map(|r| r.time_s)
        .collect();
    assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0, 3.5]);
}

/// Example 2: the server runs at 1 pkt/s during [0, 1) and C = 10
/// pkt/s during [1, 2); f sends C + 1 unit packets at t = 0, m sends C
/// at t = 1. The completion at t = 1 is processed before the arrivals
/// at t = 1, so m's packets are tagged against v(1) = 0 (f1's start
/// tag — f1 is still the last packet to have entered service) and the
/// two flows interleave from t = 1 on: SFQ splits the high-rate phase
/// evenly where WFQ would give m a single packet.
#[test]
fn example2_sfq_golden_trace() {
    let c = 10u64;
    let len = Bytes::new(125); // 1000 bits: a "unit packet", span 1
    let w = Rate::bps(1_000);
    let mut sched = Sfq::with_observer(TieBreak::default(), RingTracer::with_capacity(64));
    sched.add_flow(FlowId(1), w);
    sched.add_flow(FlowId(2), w);
    let mut pf = PacketFactory::new();
    let mut arrivals = Vec::new();
    for _ in 0..=c {
        arrivals.push(pf.make(FlowId(1), len, SimTime::ZERO));
    }
    for _ in 0..c {
        arrivals.push(pf.make(FlowId(2), len, SimTime::from_secs(1)));
    }
    let profile = RateProfile::from_segments(vec![
        Segment {
            start: SimTime::ZERO,
            rate: Rate::bps(1_000),
        },
        Segment {
            start: SimTime::from_secs(1),
            rate: Rate::bps(1_000 * c),
        },
    ]);
    run_server(&mut sched, &profile, &arrivals, SimTime::from_secs(3));
    let tr = sched.into_observer();

    // m's enqueue events at t = 1: tagged S = 0..9 against v = 0.
    let m_enq: Vec<_> = tr
        .records()
        .filter(|r| r.kind == EventKind::Enqueue && r.flow == 2)
        .map(|r| (r.start_tag_exact.clone(), r.v_exact.clone()))
        .collect();
    let expect: Vec<_> = (0..c).map(|k| (k.to_string(), "0".to_string())).collect();
    assert_eq!(m_enq, expect);

    // Full dequeue order. f1 serves alone in the slow phase. At each
    // start tag S = k both flows hold a packet; the FIFO uid
    // tie-break favors f's (earlier-arrived) packet — except at S = 0,
    // where f1 has already been served, leaving m1 alone. So the
    // high-rate phase runs m1, f2, m2, f3, m3, …, f11: one packet each
    // per tag value, the even split of Example 2. v(t) tracks the
    // start tag of the packet entering service throughout.
    let tag = |k: u64| (k.to_string(), (k + 1).to_string(), k.to_string());
    let mut want: Vec<(u32, String, String, String)> = Vec::new();
    let (s, f, v) = tag(0);
    want.push((1, s, f, v)); // f1, slow phase
    for k in 0..c {
        if k > 0 {
            let (s, f, v) = tag(k);
            want.push((1, s, f, v)); // f_{k+1} wins the S = k tie
        }
        let (s, f, v) = tag(k);
        want.push((2, s, f, v)); // m_{k+1}
    }
    let (s, f, v) = tag(c);
    want.push((1, s, f, v)); // f11, no m packet left at S = 10
    assert_eq!(dequeues(&tr), want);

    // The high-rate phase serves one packet every 0.1 s from t = 1.
    let times: Vec<f64> = tr
        .records()
        .filter(|r| r.kind == EventKind::Dequeue)
        .map(|r| r.time_s)
        .collect();
    assert_eq!(times.len(), 21);
    assert_eq!(times[0], 0.0);
    for (i, t) in times[1..].iter().enumerate() {
        assert!((t - (1.0 + 0.1 * i as f64)).abs() < 1e-9, "t[{i}] = {t}");
    }
}

/// Example 3: link-sharing tree root{A{C, D}, B}, every class weight
/// 1000 b/s, unit packets (span 1 at every level). While B is idle C
/// and D alternate; when B activates, A and B alternate at the root
/// and C, D keep splitting A's slots — the recursive-sharing property
/// Example 3 shows flat WFQ lacks.
#[test]
fn example3_hier_sfq_golden_trace() {
    let w = Rate::bps(1_000);
    let len = Bytes::new(125);
    let mut h = HierSfq::with_observer(RingTracer::with_capacity(64));
    let root = h.root();
    let a = h.add_class(root, w);
    h.add_flow_to(a, FlowId(3), w); // C
    h.add_flow_to(a, FlowId(4), w); // D
    h.add_flow_to(root, FlowId(2), w); // B
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;

    // Phase 1: B idle; C and D send two unit packets each.
    for _ in 0..2 {
        h.enqueue(t0, pf.make(FlowId(3), len, t0));
        h.enqueue(t0, pf.make(FlowId(4), len, t0));
    }
    for k in 0..4u64 {
        let now = SimTime::from_secs(k as i128);
        let p = h.dequeue(now).expect("backlogged");
        h.on_departure(now);
        // C, D, C, D — equal split of the link while B is idle.
        assert_eq!(p.flow, FlowId(if k % 2 == 0 { 3 } else { 4 }));
    }

    // Phase 2: everything re-activates at t = 4. B's start tag comes
    // from the root's post-busy-period v = 4; C and D re-enter A at
    // S = max(v_A, F) = 2.
    let t4 = SimTime::from_secs(4);
    h.enqueue(t4, pf.make(FlowId(3), len, t4));
    h.enqueue(t4, pf.make(FlowId(4), len, t4));
    h.enqueue(t4, pf.make(FlowId(2), len, t4));
    h.enqueue(t4, pf.make(FlowId(2), len, t4));
    let mut order = Vec::new();
    for k in 4..8u64 {
        let now = SimTime::from_secs(k as i128);
        let p = h.dequeue(now).expect("backlogged");
        h.on_departure(now);
        order.push(p.flow.0);
    }
    // A and B alternate at the root; within A, C then D.
    assert_eq!(order, vec![3, 2, 4, 2]);

    let tr = h.into_observer();
    // Class-level dequeue tags: phase 1 charges C, D up to F = 2 each
    // (v(t) at the root steps 0..3 — one slot per packet); in phase 2
    // the leaves resume at S = 2 inside A while the root serves
    // alternately at v = 4, 4, 5, 5.
    assert_eq!(
        dequeues(&tr),
        own(&[
            (3, "0", "1", "0"),
            (4, "0", "1", "1"),
            (3, "1", "2", "2"),
            (4, "1", "2", "3"),
            (3, "2", "3", "4"),
            (2, "4", "5", "4"),
            (4, "2", "3", "5"),
            (2, "5", "6", "5"),
        ])
    );
}
