//! Pinned regression scenarios, triaged from
//! `tests/theorem_throughput_delay.proptest-regressions`.
//!
//! Triage: those seeds were recorded by upstream proptest's
//! shrinking/persistence machinery, which the offline shim originally
//! ignored — so the committed file was dead weight: nothing ever
//! re-ran the four scenarios. Re-running them here shows **no theorem
//! violation**: they were shrink-path artifacts of the upstream tool,
//! not counterexamples. Each is pinned below as a named deterministic
//! test running all four tier-1 properties (Theorem 4, Theorem 2,
//! Eq. 56, WFQ guarantee), so a future scheduler change that breaks
//! one of them fails by name.
//!
//! Since PR 5 the shim *also* replays every committed `cc` line
//! itself: each token is folded to a seed and run as an extra case
//! before the random stream (see `shims/proptest`, meta-tested in
//! `shims/proptest/tests/regression_meta.rs`). These named pins stay
//! because they exercise the *exact* recorded scenarios, while the
//! shim's token-folded replay draws fresh inputs from a token-derived
//! RNG — complementary, not redundant.

use sfq_repro::prelude::*;

const LINK: u64 = 100_000; // 100 Kb/s — matches theorem_throughput_delay.rs
const DELTA: u64 = 10_000; // FC burstiness in bits

/// CBR at each flow's reserved rate plus a 3-packet burst on flow 1 —
/// identical to `arrivals_for` in theorem_throughput_delay.rs.
fn arrivals_for(
    pf: &mut PacketFactory,
    weights: &[u64],
    lens: &[u64],
    horizon: SimTime,
) -> Vec<Packet> {
    let mut all = Vec::new();
    for (i, (&w, &l)) in weights.iter().zip(lens).enumerate() {
        let flow = FlowId(i as u32 + 1);
        let src = CbrSource::with_rate(SimTime::ZERO, Rate::bps(w), Bytes::new(l));
        let mut list = to_packets(pf, flow, &arrivals_until(src, horizon));
        if i == 0 {
            for _ in 0..3 {
                list.push(pf.make(flow, Bytes::new(l), SimTime::ZERO));
            }
        }
        all.push(list);
    }
    merge(all)
}

fn others(lens: &[u64], i: usize) -> Vec<Bytes> {
    lens.iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, &l)| Bytes::new(l))
        .collect()
}

/// Theorem 4 on the fluctuating FC server.
fn check_sfq_delay(weights: &[u64], lens: &[u64]) {
    let horizon = SimTime::from_secs(120);
    let profile = fc_on_off(
        FcParams {
            rate: Rate::bps(LINK),
            delta_bits: DELTA,
        },
        horizon,
    );
    let mut sched = Sfq::new();
    for (i, &w) in weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut pf = PacketFactory::new();
    let arrivals = arrivals_for(&mut pf, weights, lens, horizon);
    let deps = run_server(&mut sched, &profile, &arrivals, horizon);
    for (i, &w) in weights.iter().enumerate() {
        let term = analysis::sfq_delay_term(
            &others(lens, i),
            Bytes::new(lens[i]),
            Rate::bps(LINK),
            DELTA,
        );
        let viol = max_guarantee_violation(&deps, FlowId(i as u32 + 1), Rate::bps(w), term);
        assert_eq!(
            viol,
            SimDuration::ZERO,
            "Theorem 4 violated for flow {} by {viol:?}",
            i + 1
        );
    }
}

/// Theorem 2's throughput floor, sampled over departure boundaries.
fn check_sfq_throughput(weights: &[u64], lens: &[u64]) {
    let horizon = SimTime::from_secs(60);
    let profile = fc_on_off(
        FcParams {
            rate: Rate::bps(LINK),
            delta_bits: DELTA,
        },
        horizon,
    );
    let mut sched = Sfq::new();
    for (i, &w) in weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut pf = PacketFactory::new();
    let mut all = Vec::new();
    let burst_bits: u64 = 2 * LINK * 60;
    let n_burst = burst_bits / (lens[0] * 8);
    let mut l0 = Vec::new();
    for _ in 0..n_burst {
        l0.push(pf.make(FlowId(1), Bytes::new(lens[0]), SimTime::ZERO));
    }
    all.push(l0);
    for (i, (&w, &l)) in weights.iter().zip(lens).enumerate().skip(1) {
        let flow = FlowId(i as u32 + 1);
        let src = CbrSource::with_rate(SimTime::ZERO, Rate::bps(w), Bytes::new(l));
        all.push(to_packets(&mut pf, flow, &arrivals_until(src, horizon)));
    }
    let arrivals = merge(all);
    let deps = run_server(&mut sched, &profile, &arrivals, horizon);
    let boundaries: Vec<SimTime> = deps.iter().map(|d| d.departure).collect();
    let all_lmax: Vec<Bytes> = lens.iter().map(|&l| Bytes::new(l)).collect();
    let w1 = Rate::bps(weights[0]);
    let step = (boundaries.len() / 12).max(1);
    for (ai, &a) in boundaries.iter().step_by(step).enumerate() {
        for &b in boundaries.iter().skip(ai * step).step_by(step * 2) {
            if b <= a {
                continue;
            }
            let floor = analysis::sfq_throughput_floor_bits(
                w1,
                b - a,
                &all_lmax,
                Rate::bps(LINK),
                DELTA,
                Bytes::new(lens[0]),
            );
            let got = work_in_interval(&deps, FlowId(1), a, b).bits_ratio();
            assert!(
                got >= floor,
                "Theorem 2 violated on [{a:?},{b:?}]: got {got:?} < floor {floor:?}"
            );
        }
    }
}

/// Eq. 56 (SCFQ) on a constant-rate server.
fn check_scfq_delay(weights: &[u64], lens: &[u64]) {
    let horizon = SimTime::from_secs(120);
    let profile = RateProfile::constant(Rate::bps(LINK));
    let mut sched = Scfq::new();
    for (i, &w) in weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut pf = PacketFactory::new();
    let arrivals = arrivals_for(&mut pf, weights, lens, horizon);
    let deps = run_server(&mut sched, &profile, &arrivals, horizon);
    for (i, &w) in weights.iter().enumerate() {
        let term = analysis::scfq_delay_term(
            &others(lens, i),
            Bytes::new(lens[i]),
            Rate::bps(w),
            Rate::bps(LINK),
        );
        let viol = max_guarantee_violation(&deps, FlowId(i as u32 + 1), Rate::bps(w), term);
        assert_eq!(
            viol,
            SimDuration::ZERO,
            "Eq. 56 violated for flow {} by {viol:?}",
            i + 1
        );
    }
}

/// WFQ's guarantee `EAT + l/r + l_max/C` on a constant-rate server.
fn check_wfq_delay(weights: &[u64], lens: &[u64]) {
    let horizon = SimTime::from_secs(120);
    let profile = RateProfile::constant(Rate::bps(LINK));
    let mut sched = Wfq::new(Rate::bps(LINK));
    for (i, &w) in weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut pf = PacketFactory::new();
    let arrivals = arrivals_for(&mut pf, weights, lens, horizon);
    let deps = run_server(&mut sched, &profile, &arrivals, horizon);
    let lmax = Bytes::new(*lens.iter().max().expect("non-empty"));
    for (i, &w) in weights.iter().enumerate() {
        let term =
            analysis::wfq_delay_term(Bytes::new(lens[i]), Rate::bps(w), lmax, Rate::bps(LINK));
        let viol = max_guarantee_violation(&deps, FlowId(i as u32 + 1), Rate::bps(w), term);
        assert_eq!(
            viol,
            SimDuration::ZERO,
            "WFQ guarantee violated for flow {} by {viol:?}",
            i + 1
        );
    }
}

fn check_all(weights: &[u64], lens: &[u64]) {
    check_sfq_delay(weights, lens);
    check_sfq_throughput(weights, lens);
    check_scfq_delay(weights, lens);
    check_wfq_delay(weights, lens);
}

// cc f36ee7b0cc3feb6772a34427e78cafcb937755ed9cbac289ce6b8f2c14407007
#[test]
fn pinned_five_flows_burst_heavy_lens() {
    check_all(
        &[8_155, 10_529, 5_392, 5_361, 10_466],
        &[226, 100, 100, 289, 100],
    );
}

// cc 5d707df7b0abae14834bdec909fbd8cdb3eb3b3d8948adddcfe101a26e260880
#[test]
fn pinned_three_flows_large_packets() {
    check_all(&[14_805, 11_121, 14_725], &[677, 555, 1_066]);
}

// cc 5e0f43a7d3981dc0680d19c40f4f2bb9683932b52f5a1b1f9dd1715cb40d0280
#[test]
fn pinned_five_flows_wide_len_spread() {
    check_all(
        &[9_678, 15_124, 10_576, 14_975, 14_423],
        &[768, 579, 989, 495, 142],
    );
}

// cc 4205f04ed299eb3bd88d262c04b246dfdc32dd0adf07cd4b3c9f7dbae9e7f7ac
#[test]
fn pinned_five_flows_minimal_lens() {
    check_all(
        &[15_733, 5_086, 14_097, 10_481, 6_713],
        &[171, 100, 331, 100, 106],
    );
}
