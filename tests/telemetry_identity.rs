//! Differential stats oracle for the telemetry plane (see
//! `docs/telemetry.md`): the plain-write counter pages of
//! `sfq-telemetry` must agree *bit for bit* with the synchronous
//! [`CountingObserver`] ground truth — the observer sits inside the
//! scheduler's event path, the page is written with relaxed stores and
//! read through a seqlock, and any divergence means a recording hook is
//! missing, double-firing, or torn.
//!
//! Three layers:
//!
//! 1. **Core schedulers.** `Sfq`, `SfqFast`, `ScfqFast`, and the SCFQ
//!    baseline run the same seeded op schedule (enqueues, dequeues,
//!    head drops, force-removals, weight churn) with both a counting
//!    observer and a telemetry page attached; every shared counter must
//!    match exactly, and the page's internal identities (histogram
//!    masses, per-class byte split, resident count) must close.
//! 2. **Engine drivers.** `SyncEngine` and `ThreadedEngine` run the
//!    same call sequence with pages attached; the aggregated
//!    `EngineSnapshot` must reproduce the driver-side ledger (offered,
//!    refusals by cause, departures, force drops) and close the
//!    conservation identity at quiescence — and the two drivers'
//!    snapshots must be identical to each other, page by page, the
//!    telemetry face of the engine determinism contract.
//! 3. **Reconfig churn.** Weight changes and force-removals are part of
//!    the op alphabet throughout, so the identities hold across live
//!    reconfiguration, not just steady-state forwarding.

use proptest::prelude::*;
use sfq_engine::{EngineConfig, SyncEngine, ThreadedEngine};
use sfq_repro::core::ReconfigCmd;
use sfq_repro::prelude::*;
use sfq_telemetry::{Aggregator, EngineSnapshot, PageSnapshot, TelemetryHub, TelemetrySink};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const FLOWS: u32 = 6;
const SNAP_BUDGET: usize = 1024;

#[derive(Clone, Debug)]
enum Op {
    /// Enqueue a packet of the given length for flow index `0..FLOWS`.
    Enq(u32, u64),
    /// Dequeue (drain) up to the given number of packets.
    Deq(u8),
    /// Evict the flow's head-of-line packet.
    DropHead(u32),
    /// Force-remove the flow mid-backlog (the churn fault).
    ForceRemove(u32),
    /// (Re-)register the flow at a fresh weight.
    AddFlow(u32, u64),
    /// Live weight change (tag-rewrite reconfiguration).
    SetWeight(u32, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            // Enqueues and dequeues repeated so the schedule is mostly
            // forwarding with occasional churn.
            (0..FLOWS, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0..FLOWS, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0..FLOWS, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0..FLOWS, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (1u8..8).prop_map(Op::Deq),
            (1u8..8).prop_map(Op::Deq),
            (0..FLOWS).prop_map(Op::DropHead),
            (0..FLOWS).prop_map(Op::ForceRemove),
            (0..FLOWS, 1u64..64).prop_map(|(f, k)| Op::AddFlow(f, k)),
            (0..FLOWS, 1u64..64).prop_map(|(f, k)| Op::SetWeight(f, k)),
        ],
        1..250,
    )
}

/// What the test driver itself observed — the ledger every page must
/// reproduce.
#[derive(Debug, Default, PartialEq, Eq)]
struct Ledger {
    offered: u64,
    refused: u64,
    departures: u64,
    head_drops: u64,
    force_drops: u64,
}

/// Check the identities a single scheduler page must satisfy on its
/// own: histogram masses equal the event counts, the per-class byte
/// split sums to the byte total, and the resident derivation matches
/// the live queue length.
fn check_page_self_consistency(snap: &PageSnapshot, live_len: usize, ctx: &str) {
    assert_eq!(
        snap.delay_hist.iter().sum::<u64>(),
        snap.dequeues,
        "{ctx}: delay histogram mass != dequeues"
    );
    assert_eq!(
        snap.backlog_hist.iter().sum::<u64>(),
        snap.enqueues,
        "{ctx}: backlog histogram mass != enqueues"
    );
    assert_eq!(
        snap.class_bytes.iter().sum::<u64>(),
        snap.deq_bytes,
        "{ctx}: per-class service bytes != dequeued bytes"
    );
    assert_eq!(
        snap.resident(),
        live_len as i128,
        "{ctx}: page resident count != scheduler len"
    );
}

/// Drive one core scheduler (counting observer attached at
/// construction, telemetry page via `attach`) through `ops` at a
/// slowly advancing clock, then reconcile page against observer.
fn check_core_scheduler<S: Scheduler>(
    mut sched: S,
    counts: Rc<RefCell<CountingObserver>>,
    sink: TelemetrySink,
    ops: &[Op],
    ctx: &str,
) {
    let mut pf = PacketFactory::new();
    let mut now = SimTime::ZERO;
    for f in 0..FLOWS {
        sched.add_flow(FlowId(f + 1), Rate::kbps(8 * (f as u64 + 1)));
    }
    for op in ops {
        now += SimDuration::from_micros(50);
        match *op {
            Op::Enq(f, len) => {
                let pkt = pf.make(FlowId(f + 1), Bytes::new(len), now);
                let _ = sched.try_enqueue(now, pkt);
            }
            Op::Deq(k) => {
                for _ in 0..k {
                    if sched.dequeue(now).is_some() {
                        sched.on_departure(now);
                    }
                }
            }
            Op::DropHead(f) => {
                sched.drop_head(FlowId(f + 1));
            }
            Op::ForceRemove(f) => {
                sched.force_remove_flow(FlowId(f + 1));
            }
            Op::AddFlow(f, k) => {
                let _ = sched.try_reconfig(ReconfigCmd::AddFlow(FlowId(f + 1), Rate::kbps(k)));
            }
            Op::SetWeight(f, k) => {
                let _ = sched.try_reconfig(ReconfigCmd::SetWeight(FlowId(f + 1), Rate::kbps(k)));
            }
        }
    }
    let snap = sink.page().snapshot(SNAP_BUDGET).expect("snapshot");
    let truth = counts.borrow();
    assert_eq!(snap.enqueues, truth.enqueued, "{ctx}: enqueues");
    assert_eq!(snap.dequeues, truth.dequeued, "{ctx}: dequeues");
    assert_eq!(snap.head_drops, truth.dropped, "{ctx}: head drops");
    assert_eq!(snap.force_drops, truth.force_dropped, "{ctx}: force drops");
    assert_eq!(
        snap.force_removals, truth.flows_force_removed,
        "{ctx}: force removals"
    );
    check_page_self_consistency(&snap, sched.len(), ctx);
}

/// Drive an engine (either driver) through `ops` via its `Scheduler`
/// facade, recording the driver-side ledger.
fn drive_engine<S: Scheduler>(eng: &mut S, ops: &[Op]) -> Ledger {
    let mut pf = PacketFactory::new();
    let mut now = SimTime::ZERO;
    let mut ledger = Ledger::default();
    for f in 0..FLOWS {
        eng.add_flow(FlowId(f + 1), Rate::kbps(8 * (f as u64 + 1)));
    }
    for op in ops {
        now += SimDuration::from_micros(50);
        match *op {
            Op::Enq(f, len) => {
                let pkt = pf.make(FlowId(f + 1), Bytes::new(len), now);
                ledger.offered += 1;
                match eng.try_enqueue(now, pkt) {
                    Ok(()) => {}
                    Err(_) => ledger.refused += 1,
                }
            }
            Op::Deq(k) => {
                for _ in 0..k {
                    if let Ok(Some(_)) = eng.try_dequeue(now) {
                        ledger.departures += 1;
                    }
                }
            }
            Op::DropHead(f) => {
                if eng.drop_head(FlowId(f + 1)).is_some() {
                    ledger.head_drops += 1;
                }
            }
            Op::ForceRemove(f) => {
                ledger.force_drops += eng.force_remove_flow(FlowId(f + 1)) as u64;
            }
            Op::AddFlow(f, k) => {
                let _ = eng.try_reconfig(ReconfigCmd::AddFlow(FlowId(f + 1), Rate::kbps(k)));
            }
            Op::SetWeight(f, k) => {
                let _ = eng.try_reconfig(ReconfigCmd::SetWeight(FlowId(f + 1), Rate::kbps(k)));
            }
        }
    }
    // Drain to quiescence so every page is fully synchronized (each
    // backlogged shard gets one final synchronous round trip) and the
    // conservation identity closes exactly.
    while let Ok(Some(_)) = eng.try_dequeue(now) {
        ledger.departures += 1;
    }
    ledger
}

/// Reconcile an engine snapshot against the driver ledger. No shard
/// kills here, so the recovery counters must be zero.
fn check_engine_snapshot(snap: &EngineSnapshot, ledger: &Ledger, ctx: &str) {
    assert_eq!(snap.engine.offered, ledger.offered, "{ctx}: offered");
    assert_eq!(
        snap.engine.refused_total(),
        ledger.refused,
        "{ctx}: refusals"
    );
    assert_eq!(snap.totals.dequeues, ledger.departures, "{ctx}: departures");
    assert_eq!(
        snap.totals.head_drops, ledger.head_drops,
        "{ctx}: head drops"
    );
    assert_eq!(
        snap.totals.force_drops, ledger.force_drops,
        "{ctx}: force drops"
    );
    assert_eq!(snap.engine.recovery_drops, 0, "{ctx}: no kills injected");
    assert_eq!(snap.engine.recovered, 0, "{ctx}: no kills injected");
    // Accepted packets all reached a shard scheduler (quiescent), and
    // every one of them departed or was dropped by an eviction hook.
    assert_eq!(
        snap.totals.enqueues,
        ledger.offered - ledger.refused,
        "{ctx}: accepted != shard enqueues"
    );
    assert_eq!(snap.conservation_gap(), 0, "{ctx}: conservation gap");
}

fn engine_snapshot(hub: &Arc<TelemetryHub>) -> EngineSnapshot {
    Aggregator::new(Arc::clone(hub))
        .snapshot(SNAP_BUDGET)
        .expect("engine snapshot")
}

fn check_all(ops: &[Op]) {
    // Layer 1: the four core schedulers against the counting observer.
    {
        let c = Rc::new(RefCell::new(CountingObserver::new()));
        let sink = TelemetrySink::new();
        let mut s = Sfq::with_observer(TieBreak::default(), Rc::clone(&c));
        s.attach_telemetry(sink.clone());
        check_core_scheduler(s, c, sink, ops, "Sfq");
    }
    {
        let c = Rc::new(RefCell::new(CountingObserver::new()));
        let sink = TelemetrySink::new();
        let mut s = SfqFast::with_observer(TieBreak::default(), Rc::clone(&c));
        s.attach_telemetry(sink.clone());
        check_core_scheduler(s, c, sink, ops, "SfqFast");
    }
    {
        let c = Rc::new(RefCell::new(CountingObserver::new()));
        let sink = TelemetrySink::new();
        let mut s = ScfqFast::with_observer(Rc::clone(&c));
        s.attach_telemetry(sink.clone());
        check_core_scheduler(s, c, sink, ops, "ScfqFast");
    }
    {
        let c = Rc::new(RefCell::new(CountingObserver::new()));
        let sink = TelemetrySink::new();
        let mut s = Scfq::with_observer(Rc::clone(&c));
        s.attach_telemetry(sink.clone());
        check_core_scheduler(s, c, sink, ops, "Scfq");
    }

    // Layer 2: both engine drivers, small rings so backpressure
    // refusals actually fire, then page-by-page driver identity.
    let cfg = EngineConfig::new(3).batch(4).ring_capacity(16);
    let mut sync = SyncEngine::new(cfg);
    let sync_hub = sync.attach_telemetry();
    let sync_ledger = drive_engine(&mut sync, ops);
    let sync_snap = engine_snapshot(&sync_hub);
    check_engine_snapshot(&sync_snap, &sync_ledger, "SyncEngine");

    let mut threaded = ThreadedEngine::new(cfg);
    let thr_hub = threaded.attach_telemetry();
    let thr_ledger = drive_engine(&mut threaded, ops);
    let thr_snap = engine_snapshot(&thr_hub);
    check_engine_snapshot(&thr_snap, &thr_ledger, "ThreadedEngine");

    assert_eq!(sync_ledger, thr_ledger, "driver ledgers diverged");
    assert_eq!(
        sync_snap.engine, thr_snap.engine,
        "engine pages diverged between drivers"
    );
    assert_eq!(
        sync_snap.shards, thr_snap.shards,
        "shard pages diverged between drivers"
    );
    assert_eq!(sync_snap.totals, thr_snap.totals, "totals diverged");
}

proptest! {
    #[test]
    fn telemetry_matches_counting_observer(ops in ops()) {
        check_all(&ops);
    }
}

/// Pinned schedule: always runs, exercising every op kind including
/// refusals (ring capacity 16 with a 40-packet burst) and churn.
#[test]
fn pinned_schedule_holds_the_identities() {
    let mut ops = Vec::new();
    for i in 0..40u32 {
        ops.push(Op::Enq(i % FLOWS, 700 + i as u64));
    }
    ops.push(Op::SetWeight(1, 13));
    ops.push(Op::Deq(6));
    ops.push(Op::DropHead(2));
    ops.push(Op::ForceRemove(3));
    ops.push(Op::Enq(3, 900)); // refused: flow 4 was just removed
    ops.push(Op::AddFlow(3, 21));
    ops.push(Op::Enq(3, 901));
    ops.push(Op::Deq(50));
    check_all(&ops);
}
