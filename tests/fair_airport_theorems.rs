//! Fair Airport Theorems 8/9 as tier-1 property tests, driven by the
//! conformance scenario DSL (previously these checks lived only in the
//! bench harness, `crates/bench/src/exp_fa.rs`).
//!
//! The workload is Appendix B's "punished for using idle bandwidth"
//! pattern with randomized burst sizes and server class: flow 1 drains
//! a burst alone at the full link, then both flows stay backlogged.
//!
//! - Theorem 8: the normalized-service gap while both flows are
//!   backlogged is at most `3(l_f/r_f + l_m/r_m) + 2β` — unlike plain
//!   Virtual Clock, which punishes flow 1's head start without bound.
//! - Theorem 9: every packet departs by `EAT + l/r + β` (WFQ's
//!   guarantee), with `β = l/C + δ/C` folding the FC burstiness.

use conformance::{
    faults_from, hop_profile, materialize_packets, register_flows, run_faulted, Preset, Scenario,
    ServerSpec, SourceKind,
};
use proptest::prelude::*;
use sfq_repro::prelude::*;

struct FaRun {
    sc: Scenario,
    fa_gap: Ratio,
    vc_gap: Ratio,
    gap_bound: Ratio,
    delay_violation: SimDuration,
    n1: u64,
}

fn run_fa(seed: u64) -> FaRun {
    let sc = Scenario::from_seed(Preset::FairAirport, seed);
    assert_eq!(sc.flows.len(), 2);
    let weight = sc.flows[0].weight();
    let len = sc.flows[0].max_len();
    let c = sc.link();
    let horizon = sc.horizon() + SimDuration::from_secs(60);
    let profile = hop_profile(&sc, 0, horizon);
    let delta_bits = match sc.server {
        ServerSpec::Fc { delta_bits } => delta_bits,
        _ => 0,
    };
    let arrivals = materialize_packets(&sc);
    let faults = faults_from(&sc);

    let run = |sched: &mut dyn Scheduler| {
        register_flows(&sc, sched);
        run_faulted(sched, &profile, &arrivals, &faults, horizon).departures
    };
    let mut fa = FairAirport::new();
    let deps_fa = run(&mut fa);
    let mut vc = VirtualClock::new();
    let deps_vc = run(&mut vc);

    // Both-backlogged window from the scenario's burst phases: phase 2
    // starts when flow 2's burst lands; each flow then drains `n2`
    // packets at its fair share (l/r seconds apiece). Trim a margin at
    // both ends for the FC server's δ/C slack.
    let (phase2_ms, n2) = match &sc.flows[1].source {
        SourceKind::Bursts(phases) => phases[0],
        other => panic!("flow 2 must be a burst source, got {other:?}"),
    };
    let n1 = match &sc.flows[0].source {
        SourceKind::Bursts(phases) => phases[0].1 as u64,
        other => panic!("flow 1 must be a burst source, got {other:?}"),
    };
    let pkt_span_s = weight.tag_span(len).to_f64() as i128; // l/r, whole seconds here
    let t1 = SimTime::from_millis(phase2_ms as i128) + SimDuration::from_secs(2);
    let t2 = SimTime::from_millis(phase2_ms as i128)
        + SimDuration::from_secs(pkt_span_s * n2 as i128 - 4);
    assert!(t2 > t1, "window degenerate: n2 too small");

    let gap =
        |deps: &[Departure]| max_fairness_gap(deps, FlowId(1), weight, FlowId(2), weight, t1, t2);
    // Theorem 8 bound: 3(l/r + l/r) + 2β, β = l/C + δ/C.
    let beta = c.tag_span(len) + Ratio::new(delta_bits as i128, c.as_bps() as i128);
    let gap_bound = Ratio::from_int(3) * (weight.tag_span(len) + weight.tag_span(len))
        + Ratio::from_int(2) * beta;
    // Theorem 9 term: l/r + β.
    let term = SimDuration::from_ratio(weight.tag_span(len) + beta);
    let delay_violation = max_guarantee_violation(&deps_fa, FlowId(1), weight, term)
        .max(max_guarantee_violation(&deps_fa, FlowId(2), weight, term));

    FaRun {
        sc,
        fa_gap: gap(&deps_fa),
        vc_gap: gap(&deps_vc),
        gap_bound,
        delay_violation,
        n1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Theorem 8: Fair Airport's fairness gap stays within the bound on
    /// constant and FC servers, for randomized burst geometry.
    #[test]
    fn fair_airport_theorem8_fairness(seed in 0u64..1_000_000) {
        let r = run_fa(seed);
        prop_assert!(
            r.fa_gap <= r.gap_bound,
            "Theorem 8 violated: gap {:?} > bound {:?}\n  {}",
            r.fa_gap, r.gap_bound, r.sc.replay_line()
        );
    }

    /// Theorem 9: Fair Airport honors WFQ's delay guarantee on the same
    /// randomized workloads.
    #[test]
    fn fair_airport_theorem9_delay(seed in 0u64..1_000_000) {
        let r = run_fa(seed);
        prop_assert_eq!(
            r.delay_violation,
            SimDuration::ZERO,
            "Theorem 9 violated by {:?}\n  {}",
            r.delay_violation,
            r.sc.replay_line()
        );
    }

    /// The contrast claim: plain Virtual Clock punishes the flow that
    /// used idle bandwidth. With a long-enough head start the VC gap
    /// dwarfs Fair Airport's.
    #[test]
    fn virtual_clock_punishes_head_start(seed in 0u64..1_000_000) {
        let r = run_fa(seed);
        if r.n1 >= 20 {
            prop_assert!(
                r.vc_gap > r.fa_gap,
                "VC gap {:?} not worse than FA gap {:?} (n1 = {})\n  {}",
                r.vc_gap, r.fa_gap, r.n1, r.sc.replay_line()
            );
        }
    }
}
