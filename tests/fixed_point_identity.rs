//! The fixed-point fast path's correctness contract (see
//! `docs/fixed_point.md`), checked differentially against the exact
//! rational schedulers:
//!
//! 1. **Bit-identity on quantization-safe workloads.** With every
//!    weight a power of two `2^k` (`k <= 19`) and the default shift of
//!    24, every tag span is exactly representable on the fixed-point
//!    grid, so `SfqFast`/`ScfqFast` must reproduce `Sfq`/`Scfq` *bit
//!    for bit*: same dequeue order and — via trace-collecting
//!    observers — identical observer event streams, tags included.
//!    (Rebasing stays off on both sides here: events carry pre-rebase
//!    tags, and the fast floor-base rebase is checked separately in
//!    `crates/sfq-core`.)
//! 2. **Bounded lag watermark on arbitrary workloads.** With arbitrary
//!    (non-power-of-two) weights, spans quantize, so orders may
//!    legitimately diverge — but the `FlowMetrics` lag watermark of a
//!    fast scheduler must still obey Theorem 1 inflated by the
//!    documented quantization slack: after `N` dequeues each flow's
//!    tag error is below `1.5 N 2^-24`, so the pairwise spread bound
//!    `l_f/r_f + l_m/r_m` grows by at most `3 N 2^-24` seconds.
//! 3. **The bound has teeth.** A pinned adversarial workload run at
//!    `shift = 4` (spans of small packets collapse into the 1/16 s
//!    quantum) visibly violates the same bound that `shift = 24`
//!    satisfies, and breaks bit-identity on a quantization-safe
//!    workload. Any future failure of (1) or (2) is replayable: the
//!    conformance `fast` preset reproduces the same obligation from a
//!    `conformance replay: preset=fast seed=N` line.

use proptest::prelude::*;
use sfq_repro::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded observer event, tags as exact rationals. For the fast
/// schedulers the tags pass through `FixedTag::to_ratio`, so equality
/// here is equality of mathematical values, not of representations.
type Event = (u8, SimTime, u32, u64, u64, Ratio, Ratio, Ratio);

#[derive(Debug, Default)]
struct Trace {
    events: Vec<Event>,
}

impl Trace {
    fn record(&mut self, kind: u8, ev: &SchedEvent) {
        self.events.push((
            kind,
            ev.time,
            ev.flow.0,
            ev.uid,
            ev.len.as_u64(),
            ev.start_tag,
            ev.finish_tag,
            ev.v,
        ));
    }
}

impl SchedObserver for Trace {
    fn on_enqueue(&mut self, ev: &SchedEvent) {
        self.record(0, ev);
    }
    fn on_dequeue(&mut self, ev: &SchedEvent) {
        self.record(1, ev);
    }
    fn on_drop(&mut self, ev: &SchedEvent) {
        self.record(2, ev);
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Enqueue a packet of the given length for flow index `0..4`.
    Enq(usize, u64),
    /// Dequeue one packet (if any) and complete its transmission.
    Deq,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            Just(Op::Deq),
        ],
        1..200,
    )
}

/// Power-of-two weight exponents: `2^k` b/s with `14 <= k <= 19` keeps
/// every span exactly representable at shift 24 (quantization-safe).
fn exponents() -> impl Strategy<Value = [u32; 4]> {
    (14u32..20, 14u32..20, 14u32..20, 14u32..20).prop_map(|(a, b, c, d)| [a, b, c, d])
}

/// Drive `sched` through `ops` (flow ids 1..=4 at rates `2^ks[i]`),
/// returning the dequeue order and the full observer trace.
fn run_ops<S: Scheduler>(
    mut sched: S,
    trace: Rc<RefCell<Trace>>,
    ks: &[u32; 4],
    ops: &[Op],
) -> (Vec<u64>, Vec<Event>) {
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    for (i, &k) in ks.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(1 << k));
    }
    let mut order = Vec::new();
    for op in ops {
        match *op {
            Op::Enq(f, len) => {
                sched.enqueue(now, pf.make(FlowId(f as u32 + 1), Bytes::new(len), now));
            }
            Op::Deq => {
                if let Some(p) = sched.dequeue(now) {
                    sched.on_departure(now);
                    order.push(p.uid);
                }
            }
        }
    }
    while let Some(p) = sched.dequeue(now) {
        sched.on_departure(now);
        order.push(p.uid);
    }
    let events = std::mem::take(&mut trace.borrow_mut().events);
    (order, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SfqFast vs exact Sfq: identical dequeue order *and* identical
    /// observer event streams on quantization-safe workloads.
    #[test]
    fn sfq_fast_is_bit_identical_on_power_of_two_weights(
        ks in exponents(), ops in ops()
    ) {
        let te = Rc::new(RefCell::new(Trace::default()));
        let tf = Rc::new(RefCell::new(Trace::default()));
        let exact = Sfq::with_observer(TieBreak::Fifo, Rc::clone(&te));
        let fast = SfqFast::with_observer(TieBreak::Fifo, Rc::clone(&tf));
        let (oe, ee) = run_ops(exact, te, &ks, &ops);
        let (of, ef) = run_ops(fast, tf, &ks, &ops);
        prop_assert_eq!(&oe, &of, "dequeue orders diverged (ks {:?})", ks);
        prop_assert_eq!(ee.len(), ef.len());
        for (i, (a, b)) in ee.iter().zip(&ef).enumerate() {
            prop_assert_eq!(a, b, "event #{} diverged (ks {:?})", i, ks);
        }
    }

    /// ScfqFast vs exact Scfq, same obligation.
    #[test]
    fn scfq_fast_is_bit_identical_on_power_of_two_weights(
        ks in exponents(), ops in ops()
    ) {
        let te = Rc::new(RefCell::new(Trace::default()));
        let tf = Rc::new(RefCell::new(Trace::default()));
        let exact = Scfq::with_observer(Rc::clone(&te));
        let fast = ScfqFast::with_observer(Rc::clone(&tf));
        let (oe, ee) = run_ops(exact, te, &ks, &ops);
        let (of, ef) = run_ops(fast, tf, &ks, &ops);
        prop_assert_eq!(&oe, &of, "dequeue orders diverged (ks {:?})", ks);
        prop_assert_eq!(ee.len(), ef.len());
        for (i, (a, b)) in ee.iter().zip(&ef).enumerate() {
            prop_assert_eq!(a, b, "event #{} diverged (ks {:?})", i, ks);
        }
    }

    /// Arbitrary (non-power-of-two) weights: orders may diverge, but
    /// the fast scheduler's FlowMetrics lag watermark stays within
    /// Theorem 1 plus the documented quantization slack.
    #[test]
    fn sfq_fast_lag_watermark_is_bounded_on_arbitrary_workloads(
        r1 in 500u64..50_000,
        r2 in 500u64..50_000,
        lens in prop::collection::vec((64u64..2000, 64u64..2000), 40..80),
    ) {
        let metrics = Rc::new(RefCell::new(FlowMetrics::new()));
        let mut sched = SfqFast::with_observer(TieBreak::Fifo, Rc::clone(&metrics));
        sched.add_flow(FlowId(1), Rate::bps(r1));
        sched.add_flow(FlowId(2), Rate::bps(r2));
        let mut pf = PacketFactory::new();
        let now = SimTime::ZERO;
        let (mut l1max, mut l2max) = (0, 0);
        for &(l1, l2) in &lens {
            sched.enqueue(now, pf.make(FlowId(1), Bytes::new(l1), now));
            sched.enqueue(now, pf.make(FlowId(2), Bytes::new(l2), now));
            l1max = l1max.max(l1);
            l2max = l2max.max(l2);
        }
        let mut n_deq = 0i128;
        while let Some(_p) = sched.dequeue(now) {
            sched.on_departure(now);
            n_deq += 1;
        }
        let spread = metrics
            .borrow()
            .worst_spread_between(FlowId(1), FlowId(2))
            .unwrap_or(Ratio::ZERO);
        let bound = sfq_fairness_bound(
            Bytes::new(l1max), Rate::bps(r1),
            Bytes::new(l2max), Rate::bps(r2),
        );
        // Each side's quantized tag drifts < 1.5 * N * 2^-24 from the
        // exact tag after N dequeues; the pairwise watermark inflates
        // by at most both drifts combined.
        let slack = Ratio::new(3 * n_deq, 1i128 << 24);
        prop_assert!(
            spread <= bound + slack,
            "spread {spread:?} > Theorem 1 bound {bound:?} + slack {slack:?}"
        );
    }
}

/// Build the adversarial two-flow workload of `docs/fixed_point.md`:
/// both flows at `2^14` b/s; flow 1 sends 300 x 100 B (exact span
/// 800/2^14 s ~ 0.0488), flow 2 sends 20 x 2048 B (span exactly 1 s).
/// At shift 4 the small span truncates to zero and clamps to the
/// 1/16 s quantum — a 28% overestimate that starves flow 1.
fn adversarial_run(sched: &mut dyn Scheduler) -> (Vec<u64>, i128) {
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    let r = Rate::bps(1 << 14);
    sched.add_flow(FlowId(1), r);
    sched.add_flow(FlowId(2), r);
    let mut arrivals = Vec::new();
    for _ in 0..300 {
        arrivals.push(pf.make(FlowId(1), Bytes::new(100), now));
    }
    for _ in 0..20 {
        arrivals.push(pf.make(FlowId(2), Bytes::new(2048), now));
    }
    arrivals.sort_by_key(|p| p.uid);
    for &p in &arrivals {
        sched.enqueue(now, p);
    }
    let mut order = Vec::new();
    while let Some(p) = sched.dequeue(now) {
        sched.on_departure(now);
        order.push(p.uid);
    }
    (order, arrivals.len() as i128)
}

fn spread_of(metrics: &Rc<RefCell<FlowMetrics>>) -> Ratio {
    metrics
        .borrow()
        .worst_spread_between(FlowId(1), FlowId(2))
        .expect("both flows backlogged together")
}

/// Pinned witness: shift 4 visibly violates the bound that shift 24
/// (and the exact scheduler) satisfy, and breaks bit-identity on the
/// same quantization-safe weights. This proves the differential suite
/// above would catch a fixed-point layer with too little precision.
#[test]
fn shift_4_witness_violates_the_bound_that_shift_24_satisfies() {
    let bound = sfq_fairness_bound(
        Bytes::new(100),
        Rate::bps(1 << 14),
        Bytes::new(2048),
        Rate::bps(1 << 14),
    );

    let me = Rc::new(RefCell::new(FlowMetrics::new()));
    let mut exact = Sfq::with_observer(TieBreak::Fifo, Rc::clone(&me));
    let (exact_order, n) = adversarial_run(&mut exact);

    let m24 = Rc::new(RefCell::new(FlowMetrics::new()));
    let mut fast24 = SfqFast::with_observer(TieBreak::Fifo, Rc::clone(&m24));
    let (order24, _) = adversarial_run(&mut fast24);

    let m4 = Rc::new(RefCell::new(FlowMetrics::new()));
    let mut fast4 = SfqFast::with_shift_observer(TieBreak::Fifo, 4, Rc::clone(&m4))
        .expect("shift 4 is within the supported range");
    let (order4, _) = adversarial_run(&mut fast4);

    let slack24 = Ratio::new(3 * n, 1i128 << 24);
    // Shift 24: bit-identical to exact, and both obey Theorem 1.
    assert_eq!(exact_order, order24, "shift 24 must be bit-identical");
    assert!(spread_of(&me) <= bound + slack24);
    assert!(spread_of(&m24) <= bound + slack24);
    // Shift 4: same workload, same bound — visibly violated, and the
    // dequeue order diverges from exact.
    assert_ne!(exact_order, order4, "shift 4 must misorder this workload");
    let s4 = spread_of(&m4);
    assert!(
        s4 > bound + slack24,
        "shift-4 spread {s4:?} unexpectedly within bound {bound:?} + {slack24:?}"
    );
    // "Visibly": the violation is multiples of the bound, not epsilon.
    assert!(s4 > bound * Ratio::from_int(2), "spread {s4:?} not visible");
}

/// The same obligation as the proptests, reproduced from a conformance
/// replay line — the failure-message round trip every fast-path report
/// promises.
#[test]
fn fast_preset_replay_line_reproduces_the_differential_check() {
    use conformance::{run_fast_conformance, Preset, Scenario};
    let sc = Scenario::from_seed(Preset::Fast, 5);
    assert_eq!(sc.replay_line(), "conformance replay: preset=fast seed=5");
    let back = Scenario::from_replay_line(&sc.replay_line()).expect("round trip");
    assert_eq!(back.preset, Preset::Fast);
    assert_eq!(back.seed, 5);
    let out = run_fast_conformance(&back).unwrap_or_else(|d| panic!("{d}"));
    assert!(out.compared > 0);
}
