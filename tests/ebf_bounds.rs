//! EBF probabilistic bounds (Theorems 3/5): with a seeded RNG, the
//! measured tail-violation frequency must stay under the analytical
//! `B·e^{−αγ}` envelope, and a deterministic worst-case witness pins
//! the edge of the guarantee exactly.
//!
//! The randomized catch-up EBF server (`servers::ebf_catch_up`) idles
//! `τ ~ Exp(mean_gap)` truncated to `slot/2` per slot, then catches up
//! by the slot boundary. Its cumulative work therefore never leads the
//! `C·t` line and lags it by at most `C·τ`, so for any interval the
//! deficit tail obeys `P(deficit > γ) ≤ e^{−γ/(C·mean_gap)}` — the EBF
//! property with `B = 1`, `α = 1/(C·mean_gap)`, `δ = 0` — and is
//! *impossible* beyond `C·slot/2`.

use conformance::{
    materialize_packets, register_flows, Preset, Scenario, ServerSpec, OBSERVED_FLOW,
};
use des::SimRng;
use proptest::prelude::*;
use servers::{ebf_catch_up, ebf_tail_estimate, max_interval_deficit_bits};
use sfq_repro::prelude::*;

fn ebf_alpha(sc: &Scenario) -> (f64, u64, u64) {
    match sc.server {
        ServerSpec::Ebf {
            slot_ms,
            mean_gap_ms,
        } => {
            let alpha = 1.0 / (sc.link_bps as f64 * mean_gap_ms as f64 / 1_000.0);
            (alpha, slot_ms, mean_gap_ms)
        }
        other => panic!("expected EBF server, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 3 shape: the server-side deficit tail of seeded EBF
    /// profiles stays under the `B·e^{−αγ}` envelope at every γ, and
    /// vanishes exactly at the truncation point `C·slot/2`.
    #[test]
    fn ebf_deficit_tail_under_envelope(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::SingleEbf, seed);
        let (alpha, slot_ms, _) = ebf_alpha(&sc);
        let horizon = sc.horizon();
        let profile = conformance::hop_profile(&sc, 0, horizon);
        let c = sc.link();
        let slot_bits = sc.link_bps * slot_ms / 1_000;

        for gamma in [slot_bits / 20, slot_bits / 8, slot_bits / 4, slot_bits * 2 / 5] {
            let mut sampler = SimRng::new(sc.seed ^ 0x5A11);
            let f = ebf_tail_estimate(&profile, c, 0, gamma, horizon, 3_000, &mut sampler);
            let envelope = analysis::ebf_envelope(1.0, alpha, gamma);
            prop_assert!(
                f <= envelope + 0.03,
                "tail {f} > envelope {envelope} at γ = {gamma} bits\n  {}",
                sc.replay_line()
            );
        }
        // Beyond the truncation point the tail is identically zero. The
        // +64 bits absorb the catch-up rate's integer ceiling, which
        // lets the profile run a hair ahead between slots.
        let mut sampler = SimRng::new(sc.seed ^ 0x5A12);
        let f = ebf_tail_estimate(&profile, c, 0, slot_bits / 2 + 64, horizon, 3_000, &mut sampler);
        prop_assert_eq!(f, 0.0, "deficit beyond C·slot/2 is impossible\n  {}", sc.replay_line());
    }

    /// Theorem 5 shape: the per-packet delay tail on SFQ over seeded
    /// EBF servers stays under the same envelope — the fraction of
    /// packets departing later than `EAT + H + γ/C` is at most
    /// `B·e^{−αγ}`, pooled over several independent server draws.
    #[test]
    fn ebf_delay_tail_under_envelope(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::SingleEbf, seed);
        let (alpha, slot_ms, mean_gap_ms) = ebf_alpha(&sc);
        let c = sc.link();
        let horizon = sc.horizon() + SimDuration::from_secs(20);
        let obs = sc.observed().clone();
        let others = conformance::other_lmax_at(&sc, 0, OBSERVED_FLOW);
        // H: the deterministic part of the Theorem 5 bound (δ = 0).
        let base_term = analysis::sfq_delay_term(&others, obs.max_len(), c, 0);
        let arrivals = materialize_packets(&sc);
        let slot_bits = sc.link_bps * slot_ms / 1_000;

        // Per-packet excess beyond EAT + H, in bits of γ, pooled over
        // several independent server realizations.
        let mut excess_bits: Vec<f64> = Vec::new();
        for realization in 0..4u64 {
            let mut rng = SimRng::new(sc.seed).fork(0xEBFD + realization);
            let profile = ebf_catch_up(
                c,
                SimDuration::from_millis(slot_ms as i128),
                SimDuration::from_millis(mean_gap_ms as i128),
                horizon,
                &mut rng,
            );
            let mut sched = Sfq::new();
            register_flows(&sc, &mut sched);
            let deps = run_server(&mut sched, &profile, &arrivals, horizon);
            let mut flow_deps: Vec<&Departure> =
                deps.iter().filter(|d| d.pkt.flow == OBSERVED_FLOW).collect();
            flow_deps.sort_by_key(|d| (d.pkt.arrival, d.pkt.seq));
            let arr: Vec<(SimTime, Bytes)> =
                flow_deps.iter().map(|d| (d.pkt.arrival, d.pkt.len)).collect();
            let eats = analysis::expected_arrival_times(&arr, obs.weight());
            for (d, eat) in flow_deps.iter().zip(eats) {
                let bound = eat + base_term;
                let excess_s = if d.departure > bound {
                    (d.departure - bound).as_secs_f64()
                } else {
                    0.0
                };
                excess_bits.push(excess_s * sc.link_bps as f64);
            }
        }
        prop_assert!(!excess_bits.is_empty(), "no observed packets served\n  {}", sc.replay_line());
        let n = excess_bits.len() as f64;
        for gamma in [slot_bits / 8, slot_bits / 4, slot_bits * 2 / 5] {
            let f = excess_bits.iter().filter(|&&e| e > gamma as f64).count() as f64 / n;
            let envelope = analysis::ebf_envelope(1.0, alpha, gamma);
            prop_assert!(
                f <= envelope + 0.05,
                "delay tail {f} > envelope {envelope} at γ = {gamma} bits\n  {}",
                sc.replay_line()
            );
        }
        // γ at the truncation point: the delay bound becomes Theorem 4
        // with δ_eff = C·slot/2 and must hold deterministically (+64
        // bits for the catch-up rate's integer ceiling).
        let f = excess_bits
            .iter()
            .filter(|&&e| e > (slot_bits / 2 + 64) as f64)
            .count();
        prop_assert_eq!(f, 0, "delay beyond the deterministic cap\n  {}", sc.replay_line());
    }
}

/// Deterministic worst-case witness: a server idling *exactly* `slot/2`
/// every slot — the most adversarial profile `ebf_catch_up` can emit.
/// Its worst-interval deficit is exactly `C·slot/2`, the probabilistic
/// envelope's hard edge, and Theorem 4 with that effective δ holds with
/// no slack to spare.
#[test]
fn ebf_worst_case_witness() {
    let c = Rate::bps(100_000);
    let slot = SimDuration::from_millis(100);
    let horizon = SimTime::from_secs(30);
    let delta_bits = 100_000 / 10 / 2; // C·slot/2 = 5000 bits

    // Build the witness directly: off for slot/2, then 2C for slot/2.
    let mut segments = Vec::new();
    let mut t = SimTime::ZERO;
    while t <= horizon {
        segments.push(Segment {
            start: t,
            rate: Rate::bps(0),
        });
        segments.push(Segment {
            start: t + SimDuration::from_millis(50),
            rate: Rate::bps(200_000),
        });
        t += slot;
    }
    segments.push(Segment { start: t, rate: c });
    let witness = RateProfile::from_segments(segments);

    // The deficit is exactly C·slot/2 — the envelope's edge.
    let d = max_interval_deficit_bits(&witness, c, horizon);
    assert_eq!(d, Ratio::from_int(delta_bits as i128));

    // The probabilistic tail at γ just inside the edge is nonzero
    // (every slot realizes the worst case), and zero at the edge.
    let mut sampler = SimRng::new(1);
    let f_inside = ebf_tail_estimate(
        &witness,
        c,
        0,
        delta_bits - 500,
        horizon,
        3_000,
        &mut sampler,
    );
    assert!(f_inside > 0.0, "witness never exceeds γ below the edge");
    let mut sampler = SimRng::new(1);
    let f_edge = ebf_tail_estimate(&witness, c, 0, delta_bits, horizon, 3_000, &mut sampler);
    assert_eq!(f_edge, 0.0);

    // Theorem 4 with δ_eff = C·slot/2 holds on the witness.
    let lens = [400u64, 300, 250];
    let weights = [30_000u64, 30_000, 30_000];
    let mut sched = Sfq::new();
    for (i, &w) in weights.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut pf = PacketFactory::new();
    let mut all = Vec::new();
    for (i, (&w, &l)) in weights.iter().zip(&lens).enumerate() {
        let src = CbrSource::with_rate(SimTime::ZERO, Rate::bps(w), Bytes::new(l));
        all.push(to_packets(
            &mut pf,
            FlowId(i as u32 + 1),
            &arrivals_until(src, horizon),
        ));
    }
    let deps = run_server(&mut sched, &witness, &merge(all), horizon);
    assert!(!deps.is_empty());
    for (i, &w) in weights.iter().enumerate() {
        let own = Bytes::new(lens[i]);
        let others: Vec<Bytes> = lens
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &l)| Bytes::new(l))
            .collect();
        let term = analysis::sfq_delay_term(&others, own, c, delta_bits);
        let viol = max_guarantee_violation(&deps, FlowId(i as u32 + 1), Rate::bps(w), term);
        assert_eq!(
            viol,
            SimDuration::ZERO,
            "Theorem 4 with δ_eff violated for flow {} by {viol:?}",
            i + 1
        );
    }
}
