//! Cross-shard fairness of the sharded engine, measured.
//!
//! The engine composes two SFQ levels: within shard `i`, Theorem 1
//! bounds any two continuously-backlogged flows
//! `|W_f/r_f − W_g/r_g| ≤ l_f/r_f + l_g/r_g`; at the root, shards are
//! flows whose "packets" are batches of at most `B_i = batch · l_i^max`
//! bits, so `|W_i/R_i − W_j/R_j| ≤ B_i/R_i + B_j/R_j` (with
//! `R_i = Σ_{g∈i} r_g`). With every flow of shard `i` backlogged,
//! `W_i/R_i` is a convex combination of the members' `W_g/r_g`, hence
//! within `max_{g∈i}(l_f/r_f + l_g/r_g)` of any member. Chaining the
//! three inequalities bounds two flows on *different* shards:
//!
//! ```text
//! |W_f/r_f − W_m/r_m| ≤ [l_f/r_f + max_{g∈i} l_g/r_g]
//!                     + [B_i/R_i + B_j/R_j]
//!                     + [l_m/r_m + max_{g∈j} l_g/r_g]
//! ```
//!
//! This suite measures the left side exactly (watermark spreads from
//! `sfq_obs::FlowMetrics`, one shared observer across all shards) on a
//! workload that keeps every flow backlogged for the whole run, and
//! checks the inequality in exact rational arithmetic for every
//! cross-shard pair. A deterministic witness pins the worst shard pair
//! so a regression in the drainer shows up as a changed number, not
//! just a still-under-the-bound drift.

use sfq_core::{FlowId, PacketFactory};
use sfq_engine::{shard_of, EngineConfig, SyncEngine};
use sfq_obs::FlowMetrics;
use simtime::{Bytes, Rate, Ratio, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const N: usize = 12;
const SHARDS: usize = 3;
const BATCH: usize = 8;
/// Packets preloaded per flow; draining strictly fewer in total keeps
/// every flow backlogged through the entire measured interval.
const PRELOAD: usize = 2_000;
const DRAINED: usize = 1_500;

fn weight_of(f: u32) -> Rate {
    Rate::kbps([64, 128, 256, 96, 160, 320, 224, 80, 112, 192, 144, 288][f as usize])
}

fn len_of(f: u32) -> Bytes {
    Bytes::new(
        [
            300, 500, 700, 900, 1100, 400, 600, 800, 1000, 1200, 350, 750,
        ][f as usize],
    )
}

/// `l_f / r_f` exactly.
fn span_of(f: u32) -> Ratio {
    weight_of(f).tag_span(len_of(f))
}

fn members(shard: usize) -> Vec<u32> {
    (0..N as u32)
        .filter(|&f| shard_of(FlowId(f), SHARDS) == shard)
        .collect()
}

/// Run the engine and return the shared metrics sink.
fn run() -> Rc<RefCell<FlowMetrics>> {
    let metrics = Rc::new(RefCell::new(FlowMetrics::new()));
    let cfg = EngineConfig::new(SHARDS)
        .batch(BATCH)
        .ring_capacity(N * PRELOAD);
    let mut eng = SyncEngine::with_observer(cfg, Rc::clone(&metrics));
    let now = SimTime::ZERO;
    for f in 0..N as u32 {
        eng.try_add_flow(FlowId(f), weight_of(f)).unwrap();
    }
    let mut fac = PacketFactory::new();
    // Round-robin preload so uids interleave across flows.
    for _ in 0..PRELOAD {
        for f in 0..N as u32 {
            eng.try_ingest(fac.make(FlowId(f), len_of(f), now)).unwrap();
        }
    }
    let mut out = Vec::new();
    let mut left = DRAINED;
    while left > 0 {
        let chunk = left.min(50);
        let n = eng.drain(now, chunk, &mut out).unwrap();
        assert_eq!(n, chunk, "engine under-drained while backlogged");
        left -= n;
    }
    // The watermark segments are only Theorem-1 intervals if nobody
    // went idle: with DRAINED < PRELOAD no flow can have been emptied.
    assert_eq!(
        metrics.borrow().backlogged_flows().len(),
        N,
        "a flow went idle mid-measurement"
    );
    metrics
}

/// The composed two-level bound for `f` on shard `i`, `m` on shard `j`.
fn composed_bound(f: u32, m: u32) -> Ratio {
    let (i, j) = (shard_of(FlowId(f), SHARDS), shard_of(FlowId(m), SHARDS));
    assert_ne!(i, j, "composed bound is for cross-shard pairs");
    let shard_terms = |s: usize| -> (Ratio, Ratio) {
        let ms = members(s);
        let worst_span = ms.iter().map(|&g| span_of(g)).max().unwrap();
        let r_total: u64 = ms.iter().map(|&g| weight_of(g).as_bps()).sum();
        let b_bits = BATCH as u64 * ms.iter().map(|&g| len_of(g).bits()).max().unwrap();
        (worst_span, Ratio::new(b_bits as i128, r_total as i128))
    };
    let (wi, bi) = shard_terms(i);
    let (wj, bj) = shard_terms(j);
    span_of(f) + wi + bi + bj + span_of(m) + wj
}

#[test]
fn cross_shard_pairs_stay_under_the_composed_bound() {
    let metrics = run();
    let m = metrics.borrow();
    let mut checked = 0;
    for f in 0..N as u32 {
        for g in (f + 1)..N as u32 {
            if shard_of(FlowId(f), SHARDS) == shard_of(FlowId(g), SHARDS) {
                continue;
            }
            let spread = m
                .worst_spread_between(FlowId(f), FlowId(g))
                .expect("pair was backlogged together");
            let bound = composed_bound(f, g);
            assert!(
                spread <= bound,
                "flows {f},{g}: spread {} > composed bound {}",
                spread.to_f64(),
                bound.to_f64()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 30,
        "expected a dense cross-shard pair set, got {checked}"
    );
}

#[test]
fn same_shard_pairs_still_obey_theorem_1() {
    // Sharding must not weaken the leaf guarantee: flows that share a
    // shard see a plain single-server SFQ and Theorem 1 applies as-is.
    let metrics = run();
    let m = metrics.borrow();
    for f in 0..N as u32 {
        for g in (f + 1)..N as u32 {
            if shard_of(FlowId(f), SHARDS) != shard_of(FlowId(g), SHARDS) {
                continue;
            }
            let spread = m
                .worst_spread_between(FlowId(f), FlowId(g))
                .expect("pair was backlogged together");
            let bound = span_of(f) + span_of(g);
            assert!(
                spread <= bound,
                "flows {f},{g} share a shard: spread {} > Theorem 1 bound {}",
                spread.to_f64(),
                bound.to_f64()
            );
        }
    }
}

#[test]
fn worst_cross_shard_pair_witness_is_pinned() {
    // Deterministic witness: the identity of the worst cross-shard pair
    // and its exact measured spread. The run is fully deterministic
    // (fixed workload, single thread), so any change here means the
    // drainer's allocation behaviour changed — investigate before
    // re-pinning. The expected values were captured from the first
    // green run of this suite.
    let metrics = run();
    let m = metrics.borrow();
    let mut worst: Option<(u32, u32, Ratio)> = None;
    for f in 0..N as u32 {
        for g in (f + 1)..N as u32 {
            if shard_of(FlowId(f), SHARDS) == shard_of(FlowId(g), SHARDS) {
                continue;
            }
            let spread = m.worst_spread_between(FlowId(f), FlowId(g)).unwrap();
            if worst.is_none_or(|(_, _, w)| spread > w) {
                worst = Some((f, g, spread));
            }
        }
    }
    let (f, g, spread) = worst.unwrap();
    let expected = pinned_witness();
    assert_eq!(
        (f, g, spread.to_f64()),
        expected,
        "worst cross-shard pair moved (measured spread {})",
        spread.to_f64()
    );
}

/// `(flow_a, flow_b, exact spread as f64)` of the worst cross-shard
/// pair — see `worst_cross_shard_pair_witness_is_pinned`.
fn pinned_witness() -> (u32, u32, f64) {
    // Flows 3 (shard of id 3) and 8: spread exactly 1/4 of normalized
    // service — well inside their composed bound, and stable across
    // platforms because every quantity in the run is exact rational.
    (3, 8, 0.25)
}
