//! Theorem 6 + Corollary 1 over 2–5-hop forwarding-graph paths with
//! *shared* intermediate ports: unlike the tandem suite, cross flows
//! span multi-hop sub-paths, so the bound is exercised under genuine
//! fan-in, plus ingress policing, capacity droops, cross-flow churn,
//! and every drop policy. Survivors are embedded back into the
//! injected script by the shared reverse-greedy rule
//! (`conformance::embed_survivors`), so packets dropped mid-graph keep
//! the check conservative rather than vacuous. Any failure prints a
//! `conformance replay: preset=graph seed=..` line.

use conformance::{run_graph_conformance, Preset, Scenario};
use proptest::prelude::*;
use simtime::SimDuration;

fn assert_conforms(sc: &Scenario) -> Result<(), TestCaseError> {
    let out = match run_graph_conformance(sc) {
        Ok(out) => out,
        Err(e) => return Err(TestCaseError::fail(e)),
    };
    prop_assert!(
        out.completed > 0,
        "no observed packets delivered ({} injected)\n  {}",
        out.injected,
        out.replay
    );
    prop_assert_eq!(
        out.theorem6_violation,
        SimDuration::ZERO,
        "Theorem 6 violated by {:?} over {} hops\n  {}",
        out.theorem6_violation,
        out.hops,
        out.replay
    );
    prop_assert_eq!(
        out.corollary1_violation,
        SimDuration::ZERO,
        "Corollary 1 violated by {:?} (bound {:?}, max delay {:?})\n  {}",
        out.corollary1_violation,
        out.corollary1_bound,
        out.max_delay,
        out.replay
    );
    prop_assert!(out.max_delay <= out.corollary1_bound);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full graph conformance bundle — Theorem 6 along every
    /// flow's path, Corollary 1 for the shaped observed flow, per-port
    /// Theorem 1 under tail-drop, sync-vs-threaded port identity, and
    /// arena book balance — holds over random scenarios.
    #[test]
    fn theorems_hold_over_random_graphs(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::Graph, seed);
        assert_conforms(&sc)?;
    }

    /// Forcing tight per-flow caps onto the scenario (so packets are
    /// genuinely dropped mid-graph) must not break the bounds: the
    /// survivor embedding absorbs the drops.
    #[test]
    fn bounds_survive_forced_buffer_drops(seed in 0u64..1_000_000) {
        let mut sc = Scenario::from_seed(Preset::Graph, seed);
        sc.per_flow_cap = Some(3);
        assert_conforms(&sc)?;
    }
}

/// Acceptance pin: the bounds hold across >= 3 graph hops while both
/// a capacity droop and a cross-flow churn are in effect.
#[test]
fn three_plus_hops_under_churn_and_droop() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let mut sc = Scenario::from_seed(Preset::Graph, seed);
        if sc.hops < 3 {
            continue;
        }
        // Force one droop and one cross-flow churn regardless of what
        // the seed drew.
        sc.droops = vec![conformance::Droop {
            hop: 1,
            at_ms: sc.horizon_ms / 3,
            dur_ms: 300,
            percent: 50,
        }];
        let victim = sc.flows[1].id;
        sc.churns = vec![conformance::Churn {
            flow: victim,
            at_ms: sc.horizon_ms / 2,
            revive_ms: None,
        }];
        let out = run_graph_conformance(&sc).unwrap_or_else(|e| panic!("{e}"));
        assert!(out.completed > 0, "{}", out.replay);
        assert_eq!(out.theorem6_violation, SimDuration::ZERO, "{}", out.replay);
        assert_eq!(
            out.corollary1_violation,
            SimDuration::ZERO,
            "{}",
            out.replay
        );
        checked += 1;
        if checked >= 3 {
            return;
        }
    }
    panic!("fewer than 3 scenarios with >= 3 hops in 60 seeds");
}

/// The preset must actually produce the topology class it advertises:
/// within a few seeds, some intermediate port carries a cross flow
/// that entered at an earlier hop (shared-port fan-in).
#[test]
fn cross_traffic_shares_intermediate_ports() {
    for seed in 0..40u64 {
        let sc = Scenario::from_seed(Preset::Graph, seed);
        let shared = sc.flows.iter().skip(1).any(|f| {
            f.exit > f.entry
                && sc
                    .flows
                    .iter()
                    .skip(1)
                    .any(|g| g.id != f.id && g.entry > f.entry && g.entry <= f.exit)
        });
        if shared {
            let out = run_graph_conformance(&sc).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(out.theorem6_violation, SimDuration::ZERO, "{}", out.replay);
            return;
        }
    }
    panic!("no seed produced overlapping multi-hop cross flows");
}
