//! Regression: long runs mixing many pairwise-coprime weights with
//! idle-flow reactivation used to grow exact tag denominators like the
//! lcm of every weight crossed, overflowing `i128` after ~1M packets
//! (first seen in the criterion benches at |Q| = 64). The fix snaps
//! the virtual time to a picosecond grid at its read points
//! (`Ratio::snap_pico`); these tests replay the offending pattern.

use sfq_repro::prelude::*;

/// The bench access pattern: round-robin arrivals, min-tag service —
/// high-weight flows repeatedly drain to idle and reactivate off `v`.
fn churn<S: Scheduler>(mut sched: S, q: u32, rounds: usize) {
    for f in 0..q {
        sched.add_flow(FlowId(f), Rate::kbps(64 + f as u64));
    }
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for f in 0..q {
        for _ in 0..4 {
            sched.enqueue(t0, pf.make(FlowId(f), Bytes::new(200), t0));
        }
    }
    for i in 0..rounds {
        let f = FlowId(i as u32 % q);
        sched.enqueue(t0, pf.make(f, Bytes::new(200), t0));
        let p = sched.dequeue(t0).expect("backlogged");
        sched.on_departure(t0);
        std::hint::black_box(p.uid);
    }
}

#[test]
fn sfq_survives_coprime_weight_churn() {
    churn(Sfq::new(), 64, 400_000);
}

#[test]
fn scfq_survives_coprime_weight_churn() {
    churn(Scfq::new(), 64, 400_000);
}

#[test]
fn fair_airport_survives_coprime_weight_churn() {
    churn(FairAirport::new(), 32, 150_000);
}

#[test]
fn hier_sfq_survives_coprime_weight_churn() {
    churn(HierSfq::new(), 64, 400_000);
}

#[test]
fn wide_weight_spread_also_survives() {
    // Weights spanning six orders of magnitude.
    let mut sched = Sfq::new();
    for f in 0..32u32 {
        sched.add_flow(FlowId(f), Rate::bps(1 + 7u64.pow(f % 8) + f as u64));
    }
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for f in 0..32u32 {
        sched.enqueue(t0, pf.make(FlowId(f), Bytes::new(100), t0));
    }
    for i in 0..200_000usize {
        let f = FlowId(i as u32 % 32);
        sched.enqueue(t0, pf.make(f, Bytes::new(100), t0));
        let p = sched.dequeue(t0).expect("backlogged");
        sched.on_departure(t0);
        std::hint::black_box(p.uid);
    }
}
