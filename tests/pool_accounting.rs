//! Pool accounting invariants (see `docs/pooling.md`): the slab
//! behind the pooled `FlowFifos` backend must account for every slot
//! at every step — `pkts_in_use` equals the scheduler's queued count
//! after **every** operation, every slot returns to the freelist after
//! a drain (no leaks, no double frees, to the limit of the
//! generation-checked churn paths: `force_remove_flow` mid-service,
//! head-drop eviction, revival after removal), exhaustion under a pool
//! cap is the typed [`SchedError::BufferFull`] with scheduler state
//! untouched — never a panic — and the path that refuses a packet for
//! `TagOverflow` does not strand a slot either (the capacity check
//! precedes tag arithmetic, so the refused packet was never
//! allocated).
//!
//! The `million_flow_churn_smoke` test (ignored by default; CI runs it
//! release-mode) drives 1M flows of churn through `SfqFast` with lazy
//! GC and checks the three scale claims at once: leak-free slots,
//! a flow table that stays dense (slots ≪ flows ever registered), and
//! wall-clock / peak-RSS inside the CI caps.

use proptest::prelude::*;
use sfq_repro::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Debug)]
enum Op {
    Enq(usize, u64),
    Deq,
    DropHead(usize),
    ForceRemove(usize),
    Revive(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            Just(Op::Deq),
            Just(Op::Deq),
            (0usize..4).prop_map(Op::DropHead),
            (0usize..4).prop_map(Op::ForceRemove),
            (0usize..4).prop_map(Op::Revive),
        ],
        1..250,
    )
}

/// Assert the slab's books balance against the scheduler's own count.
fn books_balance<S: Scheduler>(sched: &S, stats: &PoolStats) {
    assert_eq!(
        stats.pkts_in_use,
        sched.len(),
        "slab in_use diverged from scheduler len"
    );
    assert!(stats.pkts_in_use <= stats.pkts_hwm);
    assert!(stats.pkts_hwm <= stats.pkt_slots);
    assert!(stats.flows_live <= stats.flow_slots);
}

/// Drive a pooled scheduler through churn ops, checking the accounting
/// invariant after every operation and full return after the drain.
/// `stats` extracts `PoolStats` (inherent method, so passed per type).
fn churn_accounting<S: Scheduler>(mut sched: S, ops: &[Op], stats: impl Fn(&S) -> PoolStats) {
    let ws = [9_000u64, 17_000, 4_000, 29_000];
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    for (i, &w) in ws.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    for op in ops {
        match *op {
            Op::Enq(f, len) => {
                // Register-before-enqueue so lazy GC reclamation can
                // never surface as UnknownFlow (see pool_identity.rs).
                sched.add_flow(FlowId(f as u32 + 1), Rate::bps(ws[f]));
                let pkt = pf.make(FlowId(f as u32 + 1), Bytes::new(len), now);
                let _ = sched.try_enqueue(now, pkt);
            }
            Op::Deq => {
                if sched.dequeue(now).is_some() {
                    sched.on_departure(now);
                }
            }
            Op::DropHead(f) => {
                let _ = sched.drop_head(FlowId(f as u32 + 1));
            }
            Op::ForceRemove(f) => {
                let _ = sched.force_remove_flow(FlowId(f as u32 + 1));
            }
            Op::Revive(f) => {
                sched.add_flow(FlowId(f as u32 + 1), Rate::bps(ws[f]));
            }
        }
        books_balance(&sched, &stats(&sched));
    }
    while sched.dequeue(now).is_some() {
        sched.on_departure(now);
        books_balance(&sched, &stats(&sched));
    }
    let s = stats(&sched);
    assert_eq!(s.pkts_in_use, 0, "slots leaked after full drain: {s:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sfq_pool_books_balance_under_churn(ops in ops()) {
        let mut s = Sfq::new();
        s.enable_flow_gc();
        churn_accounting(s, &ops, |s| s.pool_stats().expect("pooled default"));
    }

    #[test]
    fn sfq_fast_pool_books_balance_under_churn(ops in ops()) {
        let mut s = SfqFast::new();
        s.enable_flow_gc();
        churn_accounting(s, &ops, |s| s.pool_stats().expect("pooled default"));
    }

    #[test]
    fn scfq_pool_books_balance_under_churn(ops in ops()) {
        let mut s = Scfq::new();
        s.enable_flow_gc();
        churn_accounting(s, &ops, |s| s.pool_stats().expect("pooled default"));
    }

    #[test]
    fn scfq_fast_pool_books_balance_under_churn(ops in ops()) {
        let mut s = ScfqFast::new();
        s.enable_flow_gc();
        churn_accounting(s, &ops, |s| s.pool_stats().expect("pooled default"));
    }
}

/// A capped pool refuses with the typed error, leaves every count
/// unchanged, and recovers fully once slots free up.
#[test]
fn pool_exhaustion_is_typed_and_recoverable() {
    let mut s = Sfq::new();
    s.set_pool_limit(Some(3));
    s.add_flow(FlowId(1), Rate::bps(8_000));
    let mut pf = PacketFactory::new();
    let t0 = SimTime::ZERO;
    for _ in 0..3 {
        s.try_enqueue(t0, pf.make(FlowId(1), Bytes::new(100), t0))
            .expect("under the cap");
    }
    let before = s.pool_stats().expect("pooled default");
    let lf_before = s.flow_last_finish(FlowId(1));
    let refused = pf.make(FlowId(1), Bytes::new(100), t0);
    assert_eq!(
        s.try_enqueue(t0, refused),
        Err(SchedError::BufferFull(FlowId(1))),
        "exhaustion must be the typed error, not a panic"
    );
    // No state change on refusal: counts, slab books, and the flow's
    // tag recurrence are all exactly as before.
    assert_eq!(s.len(), 3);
    assert_eq!(s.flow_last_finish(FlowId(1)), lf_before);
    let after = s.pool_stats().expect("pooled default");
    assert_eq!(after.pkts_in_use, before.pkts_in_use);
    assert_eq!(after.pkt_slots, before.pkt_slots);
    // Drain one, and the same arrival is admitted into the freed slot.
    assert!(s.dequeue(t0).is_some());
    s.on_departure(t0);
    s.try_enqueue(t0, refused).expect("slot freed");
    let recovered = s.pool_stats().expect("pooled default");
    assert_eq!(recovered.pkts_in_use, 3);
    assert_eq!(recovered.pkt_slots, before.pkt_slots, "no growth past cap");
}

/// A `TagOverflow` refusal must not strand a slab slot: the capacity
/// check runs before tag arithmetic, so the refused packet was never
/// allocated. (Workload from `tests/tag_rebase.rs`: a 3 GB packet at
/// 1 b/s pushes `v` to 2.4e10; a prime weight near `2^63` then needs a
/// numerator no `i128` holds.)
#[test]
fn tag_overflow_refusal_leaks_nothing() {
    const W2: u64 = 999_999_999_989;
    const W3: u64 = 9_223_372_036_854_775_783;
    let t0 = SimTime::ZERO;
    let mut s = Sfq::new();
    s.add_flow(FlowId(1), Rate::bps(1));
    s.add_flow(FlowId(2), Rate::bps(W2));
    s.add_flow(FlowId(3), Rate::bps(W3));
    let mut pf = PacketFactory::new();
    s.enqueue(t0, pf.make(FlowId(1), Bytes::new(3_000_000_000), t0));
    assert!(s.dequeue(t0).is_some());
    s.on_departure(t0);
    s.enqueue(t0, pf.make(FlowId(2), Bytes::new(125), t0));
    assert!(s.dequeue(t0).is_some());
    s.on_departure(t0);
    let before = s.pool_stats().expect("pooled default");
    assert_eq!(before.pkts_in_use, 0);
    let victim = pf.make(FlowId(3), Bytes::new(125), t0);
    assert_eq!(s.try_enqueue(t0, victim), Err(SchedError::TagOverflow));
    let after = s.pool_stats().expect("pooled default");
    assert_eq!(after.pkts_in_use, 0, "refused packet stranded a slot");
    assert_eq!(after.pkt_slots, before.pkt_slots);
}

/// Shared-handle wrapper so a `SwitchCore` (which owns its scheduler
/// as `Box<dyn Scheduler>`) can be driven while the test keeps a
/// handle for reading `PoolStats`.
#[derive(Clone)]
struct Shared(Rc<RefCell<Sfq>>);

impl Scheduler for Shared {
    fn add_flow(&mut self, flow: FlowId, weight: Rate) {
        self.0.borrow_mut().add_flow(flow, weight);
    }
    fn enqueue(&mut self, now: SimTime, pkt: Packet) {
        self.0.borrow_mut().enqueue(now, pkt);
    }
    fn try_enqueue(&mut self, now: SimTime, pkt: Packet) -> Result<(), SchedError> {
        self.0.borrow_mut().try_enqueue(now, pkt)
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.0.borrow_mut().dequeue(now)
    }
    fn on_departure(&mut self, now: SimTime) {
        self.0.borrow_mut().on_departure(now);
    }
    fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
    fn len(&self) -> usize {
        self.0.borrow().len()
    }
    fn backlog(&self, flow: FlowId) -> usize {
        self.0.borrow().backlog(flow)
    }
    fn remove_flow(&mut self, flow: FlowId) -> bool {
        self.0.borrow_mut().remove_flow(flow)
    }
    fn force_remove_flow(&mut self, flow: FlowId) -> usize {
        self.0.borrow_mut().force_remove_flow(flow)
    }
    fn drop_head(&mut self, flow: FlowId) -> Option<Packet> {
        self.0.borrow_mut().drop_head(flow)
    }
    fn name(&self) -> &'static str {
        "SFQ"
    }
}

/// Every `DropPolicy` through a real `SwitchCore` port: evictions and
/// refusals keep the slab books balanced at every step, and a full
/// drain (including a mid-service `force_remove_flow` churn fault)
/// returns every slot.
#[test]
fn switch_drop_policies_keep_books_balanced() {
    use netsim::DropPolicy;
    for policy in [
        DropPolicy::TailDrop,
        DropPolicy::HeadDrop,
        DropPolicy::LowestWeightPressure,
    ] {
        let inner = Rc::new(RefCell::new(Sfq::new()));
        let mut sw = SwitchCore::new(
            Box::new(Shared(Rc::clone(&inner))),
            RateProfile::constant(Rate::bps(8_000)),
            Some(4),
        );
        sw.set_shared_cap(Some(10));
        sw.set_drop_policy(policy);
        sw.add_flow(FlowId(1), Rate::bps(1_000));
        sw.add_flow(FlowId(2), Rate::bps(16_000));
        sw.add_flow(FlowId(3), Rate::bps(4_000));
        let mut pf = PacketFactory::new();
        let mut now = SimTime::ZERO;
        let balanced = |inner: &Rc<RefCell<Sfq>>| {
            let s = inner.borrow();
            let st = s.pool_stats().expect("pooled default");
            assert_eq!(st.pkts_in_use, s.len(), "{policy:?}: books diverged");
        };
        // Overfill past both caps, transmit a little, churn, repeat.
        for round in 0..6u32 {
            for i in 0..8u32 {
                let f = FlowId(1 + (i % 3));
                let _ = sw.try_offer(now, pf.make(f, Bytes::new(250 + 100 * i as u64), now));
                balanced(&inner);
            }
            if round == 3 {
                sw.force_remove_flow(now, FlowId(2));
                balanced(&inner);
                sw.add_flow(FlowId(2), Rate::bps(16_000));
            }
            if let Some((_, done)) = sw.try_start(now) {
                sw.complete(done);
                now = done;
                balanced(&inner);
            }
        }
        // Drain the port dry: every slot must come home.
        while let Some((_, done)) = sw.try_start(now) {
            sw.complete(done);
            now = done;
            balanced(&inner);
        }
        let st = inner.borrow().pool_stats().expect("pooled default");
        assert_eq!(st.pkts_in_use, 0, "{policy:?}: slots leaked after drain");
        assert!(
            st.pkts_hwm <= 10 + 4,
            "{policy:?}: hwm {} past caps",
            st.pkts_hwm
        );
    }
}

/// Linux peak-RSS (VmHWM) in bytes, if readable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Million-flow churn smoke (CI runs this `--release -- --ignored`):
/// 20 waves of 50k fresh flows each, two packets per flow, drained
/// between waves with lazy GC on. Checks leak-freedom, flow-table
/// density (slots stay near one wave, not 1M), the wall-clock cap, and
/// the peak-RSS cap.
#[test]
#[ignore = "scale smoke: run release-mode (CI million-flow job)"]
fn million_flow_churn_smoke() {
    const WAVES: u32 = 20;
    const WAVE: u32 = 50_000;
    const WALL_CAP_S: u64 = 60;
    const RSS_CAP_BYTES: u64 = 1 << 30; // 1 GiB
    let started = std::time::Instant::now();
    let mut s = SfqFast::new();
    s.enable_flow_gc();
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    for wave in 0..WAVES {
        let base = wave * WAVE + 1;
        for i in 0..WAVE {
            let f = FlowId(base + i);
            s.add_flow(f, Rate::bps(8_000 + (i as u64 % 64) * 1_000));
            s.enqueue(now, pf.make(f, Bytes::new(200 + (i as u64 % 1_200)), now));
            s.enqueue(now, pf.make(f, Bytes::new(1_500), now));
        }
        while s.dequeue(now).is_some() {
            s.on_departure(now);
        }
        let st = s.pool_stats().expect("pooled default");
        assert_eq!(st.pkts_in_use, 0, "wave {wave}: slots leaked");
    }
    let st = s.pool_stats().expect("pooled default");
    assert_eq!(st.pkts_in_use, 0);
    // GC keeps the flow table dense: far fewer slots than the 1M flows
    // ever registered (each wave's flows are reclaimed as the next
    // wave's departures advance v past their last finish tags).
    assert!(
        st.flow_slots < 3 * WAVE as usize,
        "flow table not dense: {} slots for {} flows ever",
        st.flow_slots,
        WAVES * WAVE
    );
    assert!(st.flows_reclaimed > 0, "GC never reclaimed a flow");
    let elapsed = started.elapsed().as_secs();
    assert!(
        elapsed < WALL_CAP_S,
        "wall clock {elapsed}s >= {WALL_CAP_S}s"
    );
    if let Some(rss) = peak_rss_bytes() {
        assert!(rss < RSS_CAP_BYTES, "peak RSS {rss} >= {RSS_CAP_BYTES}");
    }
}
