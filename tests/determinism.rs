//! Bit-for-bit reproducibility: every stochastic experiment must yield
//! identical results for identical seeds, and different results for
//! different seeds (with overwhelming probability).

use sfq_repro::prelude::*;

/// Serialize a delivery list into a comparable fingerprint.
fn fingerprint(deliveries: &[netsim::Delivery]) -> Vec<(u32, u64, String)> {
    deliveries
        .iter()
        .map(|d| (d.pkt.flow.0, d.pkt.uid, format!("{:?}", d.at)))
        .collect()
}

fn run_net(seed: u64) -> Vec<netsim::Delivery> {
    let mut sw = SwitchCore::new(
        Box::new(Sfq::new()),
        RateProfile::constant(Rate::mbps(2)),
        Some(50),
    );
    sw.add_flow(FlowId(2), Rate::mbps(1));
    sw.add_flow(FlowId(3), Rate::mbps(1));
    let mut net = Net::new(sw, SimDuration::from_millis(1), SimDuration::from_millis(1));
    let vbr = VbrVideoSource::new(
        SimTime::ZERO,
        Rate::kbps(800),
        Bytes::new(50),
        30,
        0.4,
        SimRng::new(seed),
    );
    let arrivals = arrivals_until(vbr, SimTime::from_millis(800));
    net.add_scripted_source(FlowId(1), &arrivals, true);
    net.add_tcp_source(FlowId(2), TcpConfig::default(), SimTime::ZERO);
    net.add_tcp_source(FlowId(3), TcpConfig::default(), SimTime::from_millis(200));
    net.run(SimTime::from_millis(800))
}

#[test]
fn same_seed_identical_network_run() {
    let a = run_net(1234);
    let b = run_net(1234);
    assert!(!a.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seed_different_run() {
    let a = run_net(1);
    let b = run_net(2);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn poisson_single_server_run_is_deterministic() {
    let run = |seed: u64| {
        let mut sched = Sfq::new();
        sched.add_flow(FlowId(1), Rate::kbps(100));
        sched.add_flow(FlowId(2), Rate::kbps(32));
        let mut pf = PacketFactory::new();
        let horizon = SimTime::from_secs(30);
        let lists = vec![
            to_packets(
                &mut pf,
                FlowId(1),
                &arrivals_until(
                    PoissonSource::with_rate(
                        SimTime::ZERO,
                        Rate::kbps(100),
                        Bytes::new(200),
                        SimRng::new(seed),
                    ),
                    horizon,
                ),
            ),
            to_packets(
                &mut pf,
                FlowId(2),
                &arrivals_until(
                    PoissonSource::with_rate(
                        SimTime::ZERO,
                        Rate::kbps(32),
                        Bytes::new(200),
                        SimRng::new(seed ^ 0xdead),
                    ),
                    horizon,
                ),
            ),
        ];
        let arrivals = merge(lists);
        run_server(
            &mut sched,
            &RateProfile::constant(Rate::kbps(200)),
            &arrivals,
            horizon,
        )
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.pkt.uid, y.pkt.uid);
        assert_eq!(x.departure, y.departure);
        assert_eq!(x.service_start, y.service_start);
    }
}

#[test]
fn fig_experiments_are_seed_stable() {
    use bench::exp_fig1b::{fig1b, Discipline};
    let a = fig1b(Discipline::Sfq, 9, SimTime::from_millis(700));
    let b = fig1b(Discipline::Sfq, 9, SimTime::from_millis(700));
    assert_eq!(a.src2_after_start3, b.src2_after_start3);
    assert_eq!(a.src3_after_start3, b.src3_after_start3);
    assert_eq!(a.src2_series, b.src2_series);
}
