//! Acceptance scenarios from the forwarding-graph issue: a 4-ingress →
//! 1-egress incast and a 4×4 port-to-port traffic matrix, run end to
//! end with pooled packets, on bare SFQ and on both sharded engine
//! drivers. Also pins the incast-reordering regression at graph level:
//! a flow fanning in from several ingress points is served in *port
//! arrival* order — never re-sorted, never dropped by the merge.

use graph::{Graph, GraphSpec, PortKind, PortSpec};
use servers::RateProfile;
use sfq_core::FlowId;
use sfq_engine::EngineConfig;
use simtime::{Bytes, Rate, SimTime};

fn saturating_burst(n: usize, len: u64) -> Vec<(SimTime, Bytes)> {
    (0..n).map(|_| (SimTime::ZERO, Bytes::new(len))).collect()
}

/// 4→1 incast: four flows with 1:2:3:4 weights, all backlogged from
/// t = 0. Every packet must be delivered (no caps), per-flow FIFO must
/// hold, and the early service split must respect the weights.
#[test]
fn incast_4_to_1_end_to_end() {
    let weights = [8_000u64, 16_000, 24_000, 32_000];
    let flows: Vec<(FlowId, Rate)> = (0..4)
        .map(|i| (FlowId(i as u32 + 1), Rate::bps(weights[i])))
        .collect();
    let port = PortSpec::new(RateProfile::constant(Rate::bps(100_000)), flows);
    let spec = GraphSpec::incast(4, port);

    for kind in [
        PortKind::Sfq,
        PortKind::SfqFast,
        PortKind::EngineSync(EngineConfig::new(2)),
        PortKind::EngineThreaded(EngineConfig::new(2)),
    ] {
        let mut g: Graph = spec.build(kind);
        for f in 1..=4u32 {
            g.add_source((f - 1) as usize, FlowId(f), &saturating_burst(40, 250));
        }
        let r = g.run(SimTime::from_secs(600));
        let deps = &r.sink_departures[0].1;
        assert_eq!(deps.len(), 160, "{kind:?}: everything delivers");
        assert!(r.audit.balanced() && r.audit.in_use == 0, "{kind:?}");

        // Per-flow FIFO: uids within a flow depart in mint order.
        for f in 1..=4u32 {
            let uids: Vec<u64> = deps
                .iter()
                .filter(|d| d.flow == FlowId(f))
                .map(|d| d.uid)
                .collect();
            let mut sorted = uids.clone();
            sorted.sort_unstable();
            assert_eq!(uids, sorted, "{kind:?}: flow {f} reordered");
        }

        // While all four flows are backlogged (first half of the
        // departures), service splits by weight: flow 4 gets about 4×
        // flow 1's share.
        let window = &deps[..80];
        let count = |f: u32| window.iter().filter(|d| d.flow == FlowId(f)).count();
        let (c1, c4) = (count(1), count(4));
        assert!(
            c4 >= 3 * c1 && c4 <= 5 * c1.max(1),
            "{kind:?}: weighted split off: flow1={c1} flow4={c4}"
        );
    }
}

/// 4×4 traffic matrix: flow (i, j) enters at ingress i and exits at
/// egress j. Every sink must see exactly its column's flows, in full.
#[test]
fn matrix_4x4_end_to_end() {
    // Flow id encodes (ingress, egress): id = 1 + 4*i + j.
    let all_flows: Vec<(FlowId, Rate)> = (0..16)
        .map(|k| (FlowId(k as u32 + 1), Rate::bps(20_000)))
        .collect();
    let ports: Vec<PortSpec> = (0..4)
        .map(|_| PortSpec::new(RateProfile::constant(Rate::bps(400_000)), all_flows.clone()))
        .collect();
    let routes: Vec<(FlowId, usize)> = (0..16u32)
        .map(|k| (FlowId(k + 1), k as usize % 4))
        .collect();
    let spec = GraphSpec::matrix(4, ports, routes);

    for kind in [
        PortKind::Sfq,
        PortKind::EngineSync(EngineConfig::new(3)),
        PortKind::EngineThreaded(EngineConfig::new(3)),
    ] {
        let mut g = spec.build(kind);
        for k in 0..16u32 {
            let ingress = (k / 4) as usize;
            g.add_source(ingress, FlowId(k + 1), &saturating_burst(10, 500));
        }
        let r = g.run(SimTime::from_secs(600));
        assert_eq!(r.sink_departures.len(), 4);
        for (j, (_, deps)) in r.sink_departures.iter().enumerate() {
            assert_eq!(deps.len(), 40, "{kind:?}: egress {j} short");
            assert!(
                deps.iter().all(|d| (d.flow.0 - 1) as usize % 4 == j),
                "{kind:?}: wrong-column flow at egress {j}"
            );
        }
        assert!(r.audit.balanced() && r.audit.in_use == 0, "{kind:?}");
        assert_eq!(r.unrouted, 0, "{kind:?}");
    }
}

/// Incast-reordering pin: one flow fanning in from two ingress points
/// with interleaved, non-monotone upstream sequence numbers is served
/// in exactly its port-arrival (merge) order on every driver.
#[test]
fn incast_merge_preserves_arrival_order() {
    let flows = vec![(FlowId(1), Rate::bps(50_000))];
    let port = PortSpec::new(RateProfile::constant(Rate::bps(50_000)), flows);
    let spec = GraphSpec::incast(2, port);

    for kind in [
        PortKind::Sfq,
        PortKind::EngineSync(EngineConfig::new(2)),
        PortKind::EngineThreaded(EngineConfig::new(2)),
    ] {
        let mut g = spec.build(kind);
        // Ingress 0 carries the odd milliseconds, ingress 1 the even
        // ones: the port sees a strict time-interleave of two streams.
        let a: Vec<(SimTime, Bytes)> = (0..12)
            .map(|i| (SimTime::from_millis(2 * i + 1), Bytes::new(125)))
            .collect();
        let b: Vec<(SimTime, Bytes)> = (0..12)
            .map(|i| (SimTime::from_millis(2 * i + 2), Bytes::new(250)))
            .collect();
        g.add_source(0, FlowId(1), &a);
        g.add_source(1, FlowId(1), &b);
        let r = g.run(SimTime::from_secs(600));

        // Expected order: transits sorted by original arrival time
        // (ties impossible here), i.e. the merge order at the port.
        let mut expect: Vec<(SimTime, u64)> = r
            .transits
            .iter()
            .map(|t| (t.pkt.arrival, t.pkt.uid))
            .collect();
        expect.sort_unstable();
        let served: Vec<u64> = r.sink_departures[0].1.iter().map(|d| d.uid).collect();
        let expect: Vec<u64> = expect.into_iter().map(|(_, uid)| uid).collect();
        assert_eq!(served, expect, "{kind:?}: merge order not preserved");
        assert!(r.audit.balanced() && r.audit.in_use == 0, "{kind:?}");
    }
}
