//! Batch-API identity: for every discipline that overrides the batch
//! hot path (`Sfq`, `Scfq`, and the sharded `SyncEngine` itself), the
//! batch calls must be *bit-identical* to the per-packet loop — same
//! departures, same tags, same observer event stream, same residual
//! state — under arbitrary interleavings of enqueue runs and dequeue
//! runs. This is the same differential-oracle pattern as the PR 1
//! head-of-flow restructuring (`sfq-core/src/sfq.rs` proptests): the
//! per-packet path is the specification, the batch path the optimized
//! implementation under test.

use proptest::prelude::*;
use sfq_core::obs::{SchedEvent, SchedObserver};
use sfq_core::{FlowId, Packet, PacketFactory, Scheduler, Sfq, TieBreak};
use simtime::{Bytes, Rate, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const FLOWS: usize = 6;

fn weight_of(i: usize) -> Rate {
    [
        Rate::kbps(32),
        Rate::kbps(64),
        Rate::kbps(100),
        Rate::kbps(250),
        Rate::kbps(64),
        Rate::kbps(640),
    ][i]
}

/// Observer recording every event verbatim; `SchedEvent` carries the
/// exact rational tags, so comparing traces compares tag arithmetic
/// bit for bit.
#[derive(Clone, Default)]
struct RecObs {
    events: Rc<RefCell<Vec<(u8, SchedEvent)>>>,
}

impl SchedObserver for RecObs {
    fn on_enqueue(&mut self, e: &SchedEvent) {
        self.events.borrow_mut().push((0, *e));
    }
    fn on_dequeue(&mut self, e: &SchedEvent) {
        self.events.borrow_mut().push((1, *e));
    }
    fn on_drop(&mut self, e: &SchedEvent) {
        self.events.borrow_mut().push((2, *e));
    }
}

/// A run-structured op sequence: enqueue bursts and dequeue bursts.
/// The per-packet executor flattens each run into single calls; the
/// batched executor issues one batch call per run.
#[derive(Clone, Debug)]
enum Run {
    Enq(Vec<(u8, u64)>),
    Deq(usize),
}

fn runs() -> impl Strategy<Value = Vec<Run>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec((0u8..FLOWS as u8, 64u64..1500), 1..24).prop_map(Run::Enq),
            (1usize..24).prop_map(Run::Deq),
        ],
        1..40,
    )
}

fn register<S: Scheduler>(s: &mut S) {
    for i in 0..FLOWS {
        s.add_flow(FlowId(i as u32), weight_of(i));
    }
}

/// Specification side: strict per-packet loop.
fn run_per_packet<S: Scheduler>(s: &mut S, runs: &[Run]) -> Vec<Packet> {
    let now = SimTime::ZERO;
    let mut fac = PacketFactory::new();
    let mut served = Vec::new();
    for r in runs {
        match r {
            Run::Enq(pkts) => {
                for &(f, len) in pkts {
                    s.enqueue(now, fac.make(FlowId(f as u32), Bytes::new(len), now));
                }
            }
            Run::Deq(k) => {
                for _ in 0..*k {
                    let Some(p) = s.dequeue(now) else { break };
                    s.on_departure(now);
                    served.push(p);
                }
            }
        }
    }
    // Drain the residue per-packet too, so terminal busy-period state
    // (virtual-time reset, rebase-at-empty) is part of the comparison.
    while let Some(p) = s.dequeue(now) {
        s.on_departure(now);
        served.push(p);
    }
    served
}

/// Implementation side: one batch call per run.
fn run_batched<S: Scheduler>(s: &mut S, runs: &[Run]) -> Vec<Packet> {
    let now = SimTime::ZERO;
    let mut fac = PacketFactory::new();
    let mut served = Vec::new();
    let mut batch = Vec::new();
    for r in runs {
        match r {
            Run::Enq(pkts) => {
                batch.clear();
                for &(f, len) in pkts {
                    batch.push(fac.make(FlowId(f as u32), Bytes::new(len), now));
                }
                s.enqueue_batch(now, &batch);
            }
            Run::Deq(k) => {
                s.dequeue_batch(now, *k, &mut served);
            }
        }
    }
    while s.dequeue_batch(now, 64, &mut served) > 0 {}
    served
}

/// Build both executions for a scheduler constructor and assert
/// identity of departures and event traces.
fn assert_identity<S, F>(label: &str, runs: &[Run], mk: F)
where
    S: Scheduler,
    F: Fn(RecObs) -> S,
{
    let ref_obs = RecObs::default();
    let mut reference = mk(ref_obs.clone());
    register(&mut reference);
    let ref_served = run_per_packet(&mut reference, runs);

    let bat_obs = RecObs::default();
    let mut batched = mk(bat_obs.clone());
    register(&mut batched);
    let bat_served = run_batched(&mut batched, runs);

    assert_eq!(
        ref_served, bat_served,
        "{label}: departure sequences diverged"
    );
    let a = ref_obs.events.borrow();
    let b = bat_obs.events.borrow();
    assert_eq!(a.len(), b.len(), "{label}: event counts diverged");
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(ea, eb, "{label}: event {i} diverged");
    }
}

proptest! {
    #[test]
    fn sfq_batch_is_bit_identical(runs in runs()) {
        assert_identity("SFQ", &runs, |obs| {
            Sfq::with_observer(TieBreak::Fifo, obs)
        });
    }

    #[test]
    fn sfq_batch_identity_survives_eager_rebasing(runs in runs()) {
        // Threshold 0: the eager-rebase predicate fires at every
        // opportunity, the adversarial case for the one-check-per-batch
        // argument (v moves only at dequeues, so the per-packet loop's
        // extra checks are no-ops).
        assert_identity("SFQ+rebase", &runs, |obs| {
            let mut s = Sfq::with_observer(TieBreak::Fifo, obs);
            s.enable_rebasing(0);
            s
        });
    }

    #[test]
    fn sfq_batch_identity_holds_under_tiebreaks(runs in runs()) {
        assert_identity("SFQ+lwf", &runs, |obs| {
            Sfq::with_observer(TieBreak::LowWeightFirst, obs)
        });
    }

    #[test]
    fn scfq_batch_is_bit_identical(runs in runs()) {
        assert_identity("SCFQ", &runs, baselines::Scfq::with_observer);
    }

    #[test]
    fn scfq_batch_identity_survives_eager_rebasing(runs in runs()) {
        assert_identity("SCFQ+rebase", &runs, |obs| {
            let mut s = baselines::Scfq::with_observer(obs);
            s.enable_rebasing(0);
            s
        });
    }

    #[test]
    fn engine_scheduler_facade_batch_is_identical(runs in runs()) {
        // The sharded engine's `Scheduler` facade: its batch calls
        // amortize ring pumps and root picks, but must still match its
        // own per-packet facade exactly (observers aggregate across
        // shards through the shared Rc sink).
        assert_identity("SFQ-ENGINE", &runs, |obs| {
            sfq_engine::SyncEngine::with_observer(
                sfq_engine::EngineConfig::new(3).batch(4).ring_capacity(2048),
                obs,
            )
        });
    }
}

/// The default trait implementations themselves are the spec; a
/// discipline with *no* override (here: FIFO) must trivially satisfy
/// the same identity through the defaults.
#[test]
fn default_batch_impls_match_per_packet_for_fifo() {
    let runs = vec![
        Run::Enq(vec![(0, 100), (1, 900), (0, 400)]),
        Run::Deq(2),
        Run::Enq(vec![(2, 700), (1, 120)]),
        Run::Deq(10),
    ];
    let mut a = baselines::Fifo::new();
    register(&mut a);
    let mut b = baselines::Fifo::new();
    register(&mut b);
    assert_eq!(run_per_packet(&mut a, &runs), run_batched(&mut b, &runs));
}
