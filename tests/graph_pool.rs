//! Pool accounting across graph runs: every allocated slot's fate is
//! booked — delivered through the sink's return lane, freed at a
//! policer/classifier/port death, discarded by churn, or still queued
//! — and the books must balance *exactly* after any run, including
//! incast overload under each drop policy and a slot-capped arena.
//! A leak shows up as `in_use > 0` after a fully drained run, or as a
//! broken global conservation law over the report's counters.

use conformance::{run_graph_oracle, Preset, Scenario};
use graph::{GraphSpec, PktArena, PortKind, PortSpec};
use netsim::DropPolicy;
use proptest::prelude::*;
use servers::RateProfile;
use sfq_core::FlowId;
use simtime::{Bytes, Rate, SimTime};

fn incast_spec(policy: DropPolicy) -> GraphSpec {
    let flows = (1..=4u32).map(|f| (FlowId(f), Rate::bps(2_000))).collect();
    let mut port = PortSpec::new(RateProfile::constant(Rate::bps(8_000)), flows);
    port.shared_cap = Some(3);
    port.policy = policy;
    GraphSpec::incast(4, port)
}

fn burst(n: usize, len: u64) -> Vec<(SimTime, Bytes)> {
    (0..n).map(|_| (SimTime::ZERO, Bytes::new(len))).collect()
}

/// Incast overload: 40 packets into a 3-slot shared buffer, each drop
/// policy. Whatever dies (refused tails, evicted heads, pressure
/// victims), every slot must be freed by the time the run drains.
#[test]
fn incast_overload_balances_under_every_drop_policy() {
    for policy in [
        DropPolicy::TailDrop,
        DropPolicy::HeadDrop,
        DropPolicy::LowestWeightPressure,
    ] {
        let mut g = incast_spec(policy).build(PortKind::Sfq);
        for f in 1..=4u32 {
            g.add_source((f - 1) as usize, FlowId(f), &burst(10, 125));
        }
        let r = g.run(SimTime::from_secs(600));
        let delivered: u64 = r.sink_departures.iter().map(|(_, d)| d.len() as u64).sum();
        let shed: u64 = r.port_drops.iter().map(|&(_, n)| n).sum();
        assert!(shed > 0, "{policy:?}: overload must shed");
        assert_eq!(delivered + shed, 40, "{policy:?}: disposition mismatch");
        assert_eq!(r.audit.in_use, 0, "{policy:?}: leaked slots");
        assert!(r.audit.balanced(), "{policy:?}: {:?}", r.audit);
        // Lane accounting really ran: deliveries free via ReturnQueue.
        assert_eq!(r.audit.freed_lane, delivered, "{policy:?}");
    }
}

/// Churn mid-overload: force-removing a flow frees its queued slots
/// and later stragglers die at the graph boundary — no leaks either
/// way.
#[test]
fn churn_mid_overload_frees_every_slot() {
    for policy in [DropPolicy::TailDrop, DropPolicy::HeadDrop] {
        let mut g = incast_spec(policy).build(PortKind::Sfq);
        for f in 1..=4u32 {
            let arrivals: Vec<(SimTime, Bytes)> = (0..20)
                .map(|i| (SimTime::from_millis(100 * i), Bytes::new(250)))
                .collect();
            g.add_source((f - 1) as usize, FlowId(f), &arrivals);
        }
        g.schedule_churn(4, FlowId(2), SimTime::from_millis(450));
        let r = g.run(SimTime::from_secs(600));
        assert!(r.churn_discarded + r.churn_refused > 0, "{policy:?}");
        assert_eq!(r.audit.in_use, 0, "{policy:?}: leaked slots");
        assert!(r.audit.balanced(), "{policy:?}: {:?}", r.audit);
    }
}

/// A slot-capped arena refuses injections while full, then recovers as
/// the sink's lane returns slots; refusals are counted, not leaked.
#[test]
fn slot_capped_arena_refuses_then_recovers() {
    let flows = vec![(FlowId(1), Rate::bps(8_000))];
    let port = PortSpec::new(RateProfile::constant(Rate::bps(8_000)), flows);
    let spec = GraphSpec::incast(1, port);
    let mut g = spec.build_pooled(PortKind::Sfq, PktArena::with_limit(Some(2)));
    // A 6-packet burst overwhelms the 2-slot arena; later spaced
    // packets find recycled slots.
    let mut arrivals = burst(6, 125);
    for i in 0..6 {
        arrivals.push((SimTime::from_secs(2 + i), Bytes::new(125)));
    }
    g.add_source(0, FlowId(1), &arrivals);
    let r = g.run(SimTime::from_secs(600));
    assert!(r.arena_refused > 0, "cap never bound");
    let delivered: u64 = r.sink_departures.iter().map(|(_, d)| d.len() as u64).sum();
    assert_eq!(delivered + r.arena_refused, 12);
    assert!(delivered >= 6, "lane recycling never recovered");
    assert_eq!(r.audit.in_use, 0);
    assert!(r.audit.balanced(), "{:?}", r.audit);
    assert!(r.audit.high_water <= 2, "cap exceeded: {:?}", r.audit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Global conservation over random graph-preset scenarios (chains
    /// with policers, droops, churn, caps): every injected packet is
    /// accounted for exactly once across all exits, and the arena
    /// books balance.
    #[test]
    fn preset_runs_conserve_every_slot(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::Graph, seed);
        let injected: u64 = sc.flows.iter().map(|f| sc.arrivals_for(f).len() as u64).sum();
        let r = run_graph_oracle(&sc);
        let delivered: u64 = r.sink_departures.iter().map(|(_, d)| d.len() as u64).sum();
        let refused: u64 = r.port_refusals.iter().map(|(_, u)| u.len() as u64).sum();
        let exits = delivered
            + r.policer_dropped
            + r.unrouted
            + refused
            + r.evicted
            + r.churn_discarded
            + r.churn_refused
            + r.audit.in_use as u64;
        prop_assert_eq!(
            exits, injected,
            "conservation broken (delivered={} policed={} refused={} evicted={} churn={}+{} in_use={})\n  {}",
            delivered, r.policer_dropped, refused, r.evicted,
            r.churn_discarded, r.churn_refused, r.audit.in_use,
            sc.replay_line()
        );
        prop_assert!(r.audit.balanced(), "{:?}\n  {}", r.audit, sc.replay_line());
        prop_assert_eq!(r.arena_refused, 0);
    }
}
