//! Property tests for the throughput and delay guarantees:
//!
//! - Theorem 2: a backlogged flow on an SFQ FC server receives at least
//!   `r_f (t2−t1) − r_f Σ l^max/C − r_f δ/C − l_f^max` over every
//!   interval,
//! - Theorem 4: every packet departs by `EAT + Σ_{n≠f} l_n^max/C +
//!   l/C + δ/C`,
//! - Eq. 56: SCFQ departs by `EAT + Σ_{n≠f} l_n^max/C + l/r`,
//! - WFQ's guarantee `EAT + l/r + l_max/C` on a constant-rate server.

use proptest::prelude::*;
use sfq_repro::prelude::*;

const LINK: u64 = 100_000; // 100 Kb/s
const DELTA: u64 = 10_000; // FC burstiness in bits

/// N flows with admission Σ r <= C; flow 1 is the observed flow.
#[derive(Debug)]
struct Scenario {
    weights: Vec<u64>,
    lens: Vec<u64>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..6).prop_flat_map(|n| {
        (
            prop::collection::vec(5_000u64..18_000, n),
            prop::collection::vec(100u64..1_200, n),
        )
            .prop_map(|(weights, lens)| Scenario { weights, lens })
    })
}

/// CBR arrivals at each flow's reserved rate with an initial burst on
/// the observed flow (stresses the EAT chain).
fn arrivals_for(pf: &mut PacketFactory, sc: &Scenario, horizon: SimTime) -> Vec<Packet> {
    let mut all = Vec::new();
    for (i, (&w, &l)) in sc.weights.iter().zip(&sc.lens).enumerate() {
        let flow = FlowId(i as u32 + 1);
        let src = CbrSource::with_rate(SimTime::ZERO, Rate::bps(w), Bytes::new(l));
        let mut list = to_packets(pf, flow, &arrivals_until(src, horizon));
        if i == 0 {
            for _ in 0..3 {
                list.push(pf.make(flow, Bytes::new(l), SimTime::ZERO));
            }
        }
        all.push(list);
    }
    merge(all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4 on a fluctuating FC server.
    #[test]
    fn sfq_delay_guarantee_fc_server(sc in scenario()) {
        let horizon = SimTime::from_secs(120);
        let profile = fc_on_off(
            FcParams { rate: Rate::bps(LINK), delta_bits: DELTA },
            horizon,
        );
        let mut sched = Sfq::new();
        for (i, &w) in sc.weights.iter().enumerate() {
            sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
        }
        let mut pf = PacketFactory::new();
        let arrivals = arrivals_for(&mut pf, &sc, horizon);
        let deps = run_server(&mut sched, &profile, &arrivals, horizon);
        for (i, &w) in sc.weights.iter().enumerate() {
            let flow = FlowId(i as u32 + 1);
            let own = Bytes::new(sc.lens[i]);
            let others: Vec<Bytes> = sc
                .lens
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &l)| Bytes::new(l))
                .collect();
            let term = analysis::sfq_delay_term(&others, own, Rate::bps(LINK), DELTA);
            let viol = max_guarantee_violation(&deps, flow, Rate::bps(w), term);
            prop_assert_eq!(
                viol, SimDuration::ZERO,
                "Theorem 4 violated for flow {} by {:?}", i + 1, viol
            );
        }
    }

    /// Theorem 2 on the same setup: check the throughput floor over
    /// every pair of departure boundaries while flow 1 is backlogged.
    #[test]
    fn sfq_throughput_guarantee_fc_server(sc in scenario()) {
        let horizon = SimTime::from_secs(60);
        let profile = fc_on_off(
            FcParams { rate: Rate::bps(LINK), delta_bits: DELTA },
            horizon,
        );
        let mut sched = Sfq::new();
        for (i, &w) in sc.weights.iter().enumerate() {
            sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
        }
        // Flow 1 fully backlogged: a big burst at t=0. Others CBR.
        let mut pf = PacketFactory::new();
        let mut all = Vec::new();
        let burst_bits: u64 = 2 * LINK * 60; // can never drain
        let n_burst = burst_bits / (sc.lens[0] * 8);
        let mut l0 = Vec::new();
        for _ in 0..n_burst {
            l0.push(pf.make(FlowId(1), Bytes::new(sc.lens[0]), SimTime::ZERO));
        }
        all.push(l0);
        for (i, (&w, &l)) in sc.weights.iter().zip(&sc.lens).enumerate().skip(1) {
            let flow = FlowId(i as u32 + 1);
            let src = CbrSource::with_rate(SimTime::ZERO, Rate::bps(w), Bytes::new(l));
            all.push(to_packets(&mut pf, flow, &arrivals_until(src, horizon)));
        }
        let arrivals = merge(all);
        let deps = run_server(&mut sched, &profile, &arrivals, horizon);
        // Sample intervals between service boundaries.
        let boundaries: Vec<SimTime> = deps.iter().map(|d| d.departure).collect();
        let all_lmax: Vec<Bytes> = sc.lens.iter().map(|&l| Bytes::new(l)).collect();
        let w1 = Rate::bps(sc.weights[0]);
        let step = (boundaries.len() / 12).max(1);
        for (ai, &a) in boundaries.iter().step_by(step).enumerate() {
            for &b in boundaries.iter().skip(ai * step).step_by(step * 2) {
                if b <= a { continue; }
                let floor = analysis::sfq_throughput_floor_bits(
                    w1, b - a, &all_lmax, Rate::bps(LINK), DELTA, Bytes::new(sc.lens[0]),
                );
                let got = work_in_interval(&deps, FlowId(1), a, b).bits_ratio();
                prop_assert!(
                    got >= floor,
                    "Theorem 2 violated on [{a:?},{b:?}]: got {got:?} < floor {floor:?}"
                );
            }
        }
    }

    /// Eq. 56 for SCFQ on a constant-rate server.
    #[test]
    fn scfq_delay_guarantee_constant_server(sc in scenario()) {
        let horizon = SimTime::from_secs(120);
        let profile = RateProfile::constant(Rate::bps(LINK));
        let mut sched = Scfq::new();
        for (i, &w) in sc.weights.iter().enumerate() {
            sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
        }
        let mut pf = PacketFactory::new();
        let arrivals = arrivals_for(&mut pf, &sc, horizon);
        let deps = run_server(&mut sched, &profile, &arrivals, horizon);
        for (i, &w) in sc.weights.iter().enumerate() {
            let flow = FlowId(i as u32 + 1);
            let own = Bytes::new(sc.lens[i]);
            let others: Vec<Bytes> = sc
                .lens
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &l)| Bytes::new(l))
                .collect();
            let term = analysis::scfq_delay_term(&others, own, Rate::bps(w), Rate::bps(LINK));
            let viol = max_guarantee_violation(&deps, flow, Rate::bps(w), term);
            prop_assert_eq!(
                viol, SimDuration::ZERO,
                "Eq. 56 violated for flow {} by {:?}", i + 1, viol
            );
        }
    }

    /// WFQ's guarantee `EAT + l/r + l_max/C` on a constant-rate server.
    #[test]
    fn wfq_delay_guarantee_constant_server(sc in scenario()) {
        let horizon = SimTime::from_secs(120);
        let profile = RateProfile::constant(Rate::bps(LINK));
        let mut sched = Wfq::new(Rate::bps(LINK));
        for (i, &w) in sc.weights.iter().enumerate() {
            sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
        }
        let mut pf = PacketFactory::new();
        let arrivals = arrivals_for(&mut pf, &sc, horizon);
        let deps = run_server(&mut sched, &profile, &arrivals, horizon);
        let lmax = Bytes::new(*sc.lens.iter().max().expect("non-empty"));
        for (i, &w) in sc.weights.iter().enumerate() {
            let flow = FlowId(i as u32 + 1);
            let own = Bytes::new(sc.lens[i]);
            let term = analysis::wfq_delay_term(own, Rate::bps(w), lmax, Rate::bps(LINK));
            let viol = max_guarantee_violation(&deps, flow, Rate::bps(w), term);
            prop_assert_eq!(
                viol, SimDuration::ZERO,
                "WFQ guarantee violated for flow {} by {:?}", i + 1, viol
            );
        }
    }
}
