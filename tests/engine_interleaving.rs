//! Seeded-interleaving concurrency conformance: the threaded sharded
//! engine must be departure-identical to the single-threaded
//! `SyncEngine` oracle for *any* seeded call schedule, no matter how
//! the OS interleaves the shard workers. Each proptest case spawns a
//! fresh `ThreadedEngine` (fresh threads, fresh interleaving) and
//! replays one `Preset::Engine` scenario differentially; a failure
//! panics with the full divergence report, which ends in the standard
//! `conformance replay: preset=engine seed=N` line for offline
//! reproduction via the conformance fuzzer.

use conformance::{run_engine_conformance, Preset, Scenario};
use proptest::prelude::*;

proptest! {
    #[test]
    fn threaded_departures_match_the_oracle(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::Engine, seed);
        if let Err(report) = run_engine_conformance(&sc) {
            // The report's last line is the replay line; the panic
            // carries it into the proptest failure output.
            panic!("threaded engine diverged from the sync oracle:\n{report}");
        }
    }
}

/// A pinned seed: always runs, independent of the random case stream,
/// and doubles as the replay-workflow round-trip check — the printed
/// replay line must regenerate the exact same scenario and pass again.
#[test]
fn pinned_seed_and_replay_line_round_trip() {
    let sc = Scenario::from_seed(Preset::Engine, 20_260_806);
    let out = run_engine_conformance(&sc).expect("pinned engine seed diverged");
    assert_eq!(out.departures + out.refusals, out.offered);

    let replayed = Scenario::from_replay_line(&sc.replay_line()).expect("replay line parses");
    assert_eq!(replayed.preset, Preset::Engine);
    assert_eq!(replayed.seed, sc.seed);
    let again = run_engine_conformance(&replayed).expect("replayed scenario diverged");
    // The whole pipeline is deterministic, so the replay reproduces the
    // run exactly — same offered/served/refused accounting.
    assert_eq!(
        (
            again.shards,
            again.batch,
            again.offered,
            again.departures,
            again.refusals
        ),
        (
            out.shards,
            out.batch,
            out.offered,
            out.departures,
            out.refusals
        ),
    );
}

/// Divergence reports must carry the replay line even when produced by
/// the fuzz driver's `check` path (a failing seed found at night must
/// be reproducible in the morning).
#[test]
fn reports_embed_the_replay_line() {
    let sc = Scenario::from_seed(Preset::Engine, 7);
    assert!(sc.replay_line().contains("preset=engine seed=7"));
    // No real divergence exists to format, but the accounting fields of
    // a passing run prove the differential actually executed.
    let out = run_engine_conformance(&sc).expect("seed 7 diverged");
    assert!(out.offered > 0);
}
