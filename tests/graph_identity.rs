//! Oracle-vs-threaded graph identity: the same topology and script
//! built on `ThreadedEngine` ports must be departure- and
//! refusal-identical to the deterministic `SyncEngine` build — sink
//! sequences, per-port refusal orders, drop/eviction books, churn
//! counts — under incast fan-in, traffic matrices, buffer caps, every
//! drop policy, and mid-run churn. Every run is a fresh OS thread
//! interleaving of the same expected behavior, so repetition here is
//! genuine coverage, not redundancy.

use des::SimRng;
use graph::{Graph, GraphReport, GraphSpec, PortKind, PortSpec};
use netsim::DropPolicy;
use proptest::prelude::*;
use servers::RateProfile;
use sfq_core::FlowId;
use sfq_engine::EngineConfig;
use simtime::{Bytes, Rate, SimDuration, SimTime};

/// One injected source: `(entry node, flow, arrival script)`.
type Source = (usize, FlowId, Vec<(SimTime, Bytes)>);

/// A seeded workload: topology spec, per-flow scripts, and churns —
/// everything needed to build the *identical* run twice.
struct Workload {
    spec: GraphSpec,
    /// Sources in add order (fixes uid minting).
    sources: Vec<Source>,
    churns: Vec<(usize, FlowId, SimTime)>,
    cfg: EngineConfig,
}

fn gen_workload(seed: u64) -> Workload {
    let mut rng = SimRng::new(seed ^ 0x64AF_11D0);
    let policy = match rng.uniform_range(0, 3) {
        0 => DropPolicy::TailDrop,
        1 => DropPolicy::HeadDrop,
        _ => DropPolicy::LowestWeightPressure,
    };
    let n_flows = rng.uniform_range(3, 9) as u32;
    let flows: Vec<(FlowId, Rate)> = (1..=n_flows)
        .map(|f| (FlowId(f), Rate::bps(1_000 * rng.uniform_range(8, 65))))
        .collect();

    // Alternate between incast fan-in and a square traffic matrix.
    let (spec, entries) = if rng.uniform() < 0.5 {
        let fan_in = rng.uniform_range(2, 6) as usize;
        let mut port = PortSpec::new(RateProfile::constant(Rate::bps(400_000)), flows.clone());
        port.per_flow_cap = Some(rng.uniform_range(2, 7) as usize);
        port.shared_cap = Some(rng.uniform_range(6, 15) as usize);
        port.policy = policy;
        (GraphSpec::incast(fan_in, port), fan_in)
    } else {
        let m = rng.uniform_range(2, 5) as usize;
        let ports: Vec<PortSpec> = (0..m)
            .map(|_| {
                let mut p = PortSpec::new(RateProfile::constant(Rate::bps(400_000)), flows.clone());
                p.per_flow_cap = Some(rng.uniform_range(2, 7) as usize);
                p.policy = policy;
                p
            })
            .collect();
        let routes: Vec<(FlowId, usize)> = flows
            .iter()
            .map(|&(f, _)| (f, rng.uniform_range(0, m as u64) as usize))
            .collect();
        (GraphSpec::matrix(m, ports, routes), m)
    };

    // Bursty scripts: tight enough to hit the caps and the engine
    // ingress rings.
    let mut sources = Vec::new();
    for &(flow, _) in &flows {
        let entry = (flow.0 as usize - 1) % entries;
        let mut t = SimTime::from_millis(rng.uniform_range(0, 30) as i128);
        let n = rng.uniform_range(10, 41) as usize;
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            arrivals.push((t, Bytes::new(rng.uniform_range(64, 900))));
            t += SimDuration::from_millis(rng.uniform_range(0, 25) as i128);
        }
        sources.push((entry, flow, arrivals));
    }

    // Sometimes churn a flow at one of its ports mid-script.
    let mut churns = Vec::new();
    if rng.uniform() < 0.5 {
        let victim = FlowId(rng.uniform_range(1, n_flows as u64 + 1) as u32);
        for p in spec.ports() {
            churns.push((p, victim, SimTime::from_millis(150)));
        }
    }

    let cfg = EngineConfig::new(rng.uniform_range(2, 6) as usize)
        .ring_capacity(rng.uniform_range(4, 25) as usize);
    Workload {
        spec,
        sources,
        churns,
        cfg,
    }
}

fn run(w: &Workload, kind: PortKind) -> GraphReport {
    let mut g: Graph = w.spec.build(kind);
    for (entry, flow, arrivals) in &w.sources {
        g.add_source(*entry, *flow, arrivals);
    }
    for &(node, flow, at) in &w.churns {
        g.schedule_churn(node, flow, at);
    }
    g.run(SimTime::from_secs(120))
}

type Surface = (
    Vec<(usize, Vec<(u64, SimTime)>)>,
    Vec<(usize, Vec<u64>)>,
    Vec<(usize, u64)>,
    u64,
    u64,
    u64,
);

fn surface(r: &GraphReport) -> Surface {
    (
        r.sink_departures
            .iter()
            .map(|(n, d)| (*n, d.iter().map(|x| (x.uid, x.at)).collect()))
            .collect(),
        r.port_refusals.clone(),
        r.port_drops.clone(),
        r.evicted,
        r.churn_discarded,
        r.churn_refused,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Departure/refusal identity over random incast and matrix
    /// topologies with caps, drop policies, and churn.
    #[test]
    fn threaded_graph_matches_sync_oracle(seed in 0u64..1_000_000) {
        let w = gen_workload(seed);
        let sync = run(&w, PortKind::EngineSync(w.cfg));
        let thr = run(&w, PortKind::EngineThreaded(w.cfg));
        prop_assert!(sync.audit.balanced(), "sync books: {:?}", sync.audit);
        prop_assert!(thr.audit.balanced(), "threaded books: {:?}", thr.audit);
        prop_assert_eq!(surface(&sync), surface(&thr), "workload seed {}", seed);
    }
}

/// The sync-engine graph build is itself deterministic run-to-run —
/// the precondition for calling it an oracle.
#[test]
fn sync_graph_is_deterministic() {
    let w = gen_workload(7);
    let a = run(&w, PortKind::EngineSync(w.cfg));
    let b = run(&w, PortKind::EngineSync(w.cfg));
    assert_eq!(surface(&a), surface(&b));
}

/// Tight ingress rings force scheduler-level refusals; those refusals
/// must be part of the identity surface, not just switch-cap drops.
#[test]
fn ring_refusals_are_identical_across_drivers() {
    let mut found = false;
    for seed in 0..30u64 {
        let mut w = gen_workload(seed);
        w.cfg = EngineConfig::new(2).ring_capacity(3);
        let sync = run(&w, PortKind::EngineSync(w.cfg));
        let thr = run(&w, PortKind::EngineThreaded(w.cfg));
        assert_eq!(surface(&sync), surface(&thr), "seed {seed}");
        found |= sync.port_refusals.iter().any(|(_, u)| !u.is_empty());
    }
    assert!(found, "no seed ever refused at the ring — test is vacuous");
}
