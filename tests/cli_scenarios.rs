//! The shipped scenario files must parse and run end-to-end through
//! the same code path the `sfqsim` CLI uses.

use sfq_repro::prelude::*;
use sfq_repro::scenario::Scenario;

fn run_file(path: &str) -> (Scenario, Vec<Departure>) {
    let text = std::fs::read_to_string(path).expect("scenario file readable");
    let sc = Scenario::parse(&text).expect("scenario parses");
    let mut sched = sc.build_scheduler().expect("scheduler builds");
    let mut pf = PacketFactory::new();
    let arrivals = sc.build_arrivals(&mut pf);
    let profile = sc.build_profile();
    let deps = run_server(&mut *sched, &profile, &arrivals, sc.horizon);
    (sc, deps)
}

#[test]
fn demo_scenario_runs_and_honors_weights() {
    let (sc, deps) = run_file("scenarios/demo.sfq");
    assert_eq!(sc.flows.len(), 3);
    // CBR flow 1 gets its full 200 Kb/s (it never exceeds its weight).
    let thpt = throughput_bps(&deps, FlowId(1), SimTime::ZERO, sc.horizon);
    assert!((thpt - 200_000.0).abs() < 10_000.0, "thpt={thpt}");
    // The burst flow is throttled near its fair share while backlogged.
    assert!(!deps.is_empty());
}

#[test]
fn fluctuating_scenario_runs_on_fc_profile() {
    let (sc, deps) = run_file("scenarios/fluctuating.sfq");
    assert!(sc.fc_delta_bits > 0);
    // The FC link averages the configured rate, so total served work
    // over the horizon is close to rate * time (the greedy flow keeps
    // it busy).
    let bits: u64 = deps.iter().map(|d| d.pkt.len.bits()).sum();
    let avg = bits as f64 / sc.horizon.as_secs_f64();
    assert!(
        (avg - 1_000_000.0).abs() / 1_000_000.0 < 0.1,
        "server average rate off: {avg}"
    );
}

#[test]
fn scenario_is_deterministic_end_to_end() {
    let (_, a) = run_file("scenarios/demo.sfq");
    let (_, b) = run_file("scenarios/demo.sfq");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.pkt.uid, y.pkt.uid);
        assert_eq!(x.departure, y.departure);
    }
}
