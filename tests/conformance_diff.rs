//! Differential-oracle and observer-neutrality conformance.
//!
//! - The oracle reports the first divergence between two disciplines as
//!   a minimized, human-readable observer-event trace with a replay
//!   line.
//! - Observer neutrality under fault injection (the PR 2 contract,
//!   extended): departures are bit-identical with and without observers
//!   attached while flows are force-removed mid-backlog and buffers
//!   drop packets at `netsim` caps.

use conformance::{
    diff_schedulers, faults_from, materialize_packets, register_flows, run_faulted,
    run_tandem_conformance, Preset, Scenario, SchedKind,
};
use proptest::prelude::*;
use sfq_core::{Sfq, TieBreak};
use sfq_obs::RingTracer;
use simtime::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Self-diff is the identity: the same discipline on the same
    /// faulted scenario produces bit-identical departures. Catches any
    /// hidden nondeterminism in the executor or the fault injector.
    #[test]
    fn self_diff_is_identity(seed in 0u64..100_000) {
        let sc = Scenario::from_seed(Preset::SingleFc, seed);
        let rep = diff_schedulers(&sc, SchedKind::Sfq, SchedKind::Sfq);
        prop_assert!(
            rep.identical(),
            "self-diff diverged:\n{}",
            rep.divergence.map(|d| d.detail).unwrap_or_default()
        );
        prop_assert!(rep.compared > 0, "scenario produced no departures\n  {}", sc.replay_line());
    }

    /// Observer neutrality on single-server faulted runs: a traced SFQ
    /// and a bare SFQ see identical departures, discards, and refusals
    /// under the same force-remove/revive schedule.
    #[test]
    fn observers_neutral_under_single_server_churn(seed in 0u64..100_000) {
        let sc = Scenario::from_seed(Preset::SingleFc, seed);
        let horizon = sc.horizon() + SimDuration::from_secs(30);
        let profile = conformance::hop_profile(&sc, 0, horizon);
        let arrivals = materialize_packets(&sc);
        let faults = faults_from(&sc);

        let mut plain = Sfq::new();
        register_flows(&sc, &mut plain);
        let a = run_faulted(&mut plain, &profile, &arrivals, &faults, horizon);

        let tracer = Rc::new(RefCell::new(RingTracer::with_capacity(256)));
        let mut traced = Sfq::with_observer(TieBreak::Fifo, tracer.clone());
        register_flows(&sc, &mut traced);
        let b = run_faulted(&mut traced, &profile, &arrivals, &faults, horizon);

        prop_assert_eq!(a.departures, b.departures, "observer changed departures\n  {}", sc.replay_line());
        prop_assert_eq!(a.discarded, b.discarded);
        prop_assert_eq!(a.refused, b.refused);
        // The tracer actually saw the run (neutral ≠ disconnected).
        prop_assert!(tracer.borrow().total_seen() > 0);
    }
}

/// Observer neutrality across the tandem under churn *and* buffer-cap
/// drops: scheduler tracers plus hop drop-observers attached at every
/// hop must leave the observed flow's departure fingerprint — and the
/// fault accounting — bit-identical.
#[test]
fn observers_neutral_under_tandem_faults() {
    let mut exercised_drops = false;
    let mut exercised_churn = false;
    let mut checked = 0;
    for seed in 0..40u64 {
        let sc = Scenario::from_seed(Preset::Tandem, seed);
        if sc.churns.is_empty() && sc.per_flow_cap.is_none() {
            continue;
        }
        let plain = run_tandem_conformance(&sc, false);
        let traced = run_tandem_conformance(&sc, true);
        assert_eq!(
            plain.fingerprint,
            traced.fingerprint,
            "observers changed departures\n  {}",
            sc.replay_line()
        );
        assert_eq!(plain.churn_discarded, traced.churn_discarded);
        assert_eq!(plain.churn_refused, traced.churn_refused);
        assert_eq!(plain.buffer_dropped, traced.buffer_dropped);
        exercised_drops |= plain.buffer_dropped > 0;
        exercised_churn |= plain.churn_discarded + plain.churn_refused > 0;
        checked += 1;
        if exercised_drops && exercised_churn && checked >= 4 {
            return;
        }
    }
    assert!(
        exercised_drops && exercised_churn,
        "fault paths not exercised (drops={exercised_drops}, churn={exercised_churn})"
    );
}

/// Different disciplines diverge, and the report is actionable: it
/// names the disagreeing departures, embeds the replay line, and shows
/// both sides' event traces restricted to the implicated flows.
#[test]
fn divergence_report_is_minimized_and_replayable() {
    let mut found = None;
    for seed in 0..20u64 {
        let sc = Scenario::from_seed(Preset::SingleFc, seed);
        let rep = diff_schedulers(&sc, SchedKind::Sfq, SchedKind::Fifo);
        if let Some(d) = rep.divergence {
            found = Some((sc, d));
            break;
        }
    }
    let (sc, d) = found.expect("SFQ vs FIFO must diverge on some weighted scenario");
    assert!(d.detail.contains("schedules diverge at departure"));
    assert!(d.detail.contains("trace sfq"));
    assert!(d.detail.contains("trace fifo"));
    // The embedded replay line round-trips to the same scenario.
    let back = Scenario::from_replay_line(&d.detail).expect("replay line embedded in report");
    assert_eq!(back.seed, sc.seed);
    assert_eq!(back.preset, sc.preset);
    // Minimized: the trace section fits a terminal, not a firehose.
    assert!(
        d.detail.lines().count() < 64,
        "report too long ({} lines)",
        d.detail.lines().count()
    );
}
