//! Overload soak: graceful degradation and post-overload recovery.
//!
//! Drives `Preset::Soak` scenarios — a deliberately overbooked single
//! hop with tight per-flow and shared buffer caps — through
//! `netsim::SwitchCore` under each drop policy, and asserts the
//! recovery invariants deterministically on pinned seeds:
//!
//! - fairness watermarks measured over a fresh window opened at the
//!   scenario's recovery instant return under the Theorem 1 bound for
//!   *every* drop policy,
//! - tail drop (untagged door drops) additionally keeps the bound
//!   during the overload itself,
//! - every backpressure engage is matched by a release once drained,
//! - the churned cross flow completes packets again after revive,
//! - the whole run is bit-deterministic (replayable from its seed).
//!
//! Any failure message carries the scenario's
//! `conformance replay: preset=soak seed=..` line.

use conformance::{run_soak, DropKind, Preset, Scenario, SoakOutcome};

const SEEDS: [u64; 6] = [3, 17, 42, 101, 555, 9001];

fn assert_recovers(sc: &Scenario, out: &SoakOutcome) {
    assert!(
        out.shed > 0,
        "overload never shed a packet\n  {}",
        out.replay
    );
    assert!(
        out.engages > 0,
        "buffer caps never engaged backpressure\n  {}",
        out.replay
    );
    assert_eq!(
        out.engages, out.releases,
        "engage/release mismatch after drain\n  {}",
        out.replay
    );
    assert!(
        out.post_revive_completions > 0,
        "churned flow never completed after revive\n  {}",
        out.replay
    );
    assert!(
        out.recovery_spread <= out.fairness_bound,
        "fairness did not recover: spread {:?} > bound {:?} under {:?}\n  {}",
        out.recovery_spread,
        out.fairness_bound,
        sc.drop_policy,
        out.replay
    );
    if sc.drop_policy == DropKind::Tail {
        assert!(
            out.overload_spread <= out.fairness_bound,
            "tail drop broke Theorem 1 during overload: {:?} > {:?}\n  {}",
            out.overload_spread,
            out.fairness_bound,
            out.replay
        );
    }
    assert!(out.healthy(), "soak outcome unhealthy\n  {}", out.replay);
}

#[test]
fn pinned_seeds_recover_under_every_drop_policy() {
    for seed in SEEDS {
        let mut sc = Scenario::from_seed(Preset::Soak, seed);
        for kind in [DropKind::Tail, DropKind::Head, DropKind::Lwp] {
            sc.drop_policy = kind;
            let out = run_soak(&sc);
            assert_recovers(&sc, &out);
        }
    }
}

#[test]
fn head_drop_trades_overload_fairness_for_freshness() {
    // The documented tradeoff: evicting a tagged head leaves its tag
    // span charged to the flow, so delivered-service fairness is
    // sacrificed *during* overload — and must still return afterwards.
    let mut witnessed = false;
    for seed in SEEDS {
        let mut sc = Scenario::from_seed(Preset::Soak, seed);
        sc.drop_policy = DropKind::Head;
        let out = run_soak(&sc);
        assert_recovers(&sc, &out);
        if out.overload_spread > out.fairness_bound {
            witnessed = true;
        }
    }
    assert!(
        witnessed,
        "no pinned seed showed the head-drop overload fairness excursion"
    );
}

#[test]
fn soak_runs_are_bit_deterministic() {
    for seed in [17u64, 42] {
        let sc = Scenario::from_seed(Preset::Soak, seed);
        let a = run_soak(&sc);
        let b = run_soak(&sc);
        assert_eq!(a.completed, b.completed, "  {}", a.replay);
        assert_eq!(a.shed, b.shed, "  {}", a.replay);
        assert_eq!(a.engages, b.engages, "  {}", a.replay);
        assert_eq!(a.releases, b.releases, "  {}", a.replay);
        assert_eq!(a.overload_spread, b.overload_spread, "  {}", a.replay);
        assert_eq!(a.recovery_spread, b.recovery_spread, "  {}", a.replay);
        assert_eq!(
            a.post_revive_completions, b.post_revive_completions,
            "  {}",
            a.replay
        );
    }
}

#[test]
fn replay_line_reproduces_the_scenario() {
    let sc = Scenario::from_seed(Preset::Soak, 101);
    let line = sc.replay_line();
    let back = Scenario::from_replay_line(&line).expect("replay line parses");
    assert_eq!(back.preset, Preset::Soak);
    assert_eq!(back.seed, sc.seed);
    let a = run_soak(&sc);
    let b = run_soak(&back);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.recovery_spread, b.recovery_spread);
}

#[test]
fn accounting_balances_across_the_soak() {
    for seed in SEEDS {
        let sc = Scenario::from_seed(Preset::Soak, seed);
        let out = run_soak(&sc);
        // Every injected packet either completed, was shed at a cap,
        // was refused while its flow was churned out, or was discarded
        // by the force-removal itself.
        assert_eq!(
            out.injected as u64,
            out.completed + out.shed + out.refused + out.discarded,
            "packet accounting leaked\n  {}",
            out.replay
        );
    }
}
