//! The zero-allocation data path's correctness contract (see
//! `docs/pooling.md`), checked differentially: every scheduler built
//! on the pooled `FlowFifos` backend (slab packet pool + intrusive
//! per-flow links + generation-checked dense flow table) must be **bit
//! identical** to the same scheduler on the owned backend (`HashMap` +
//! `VecDeque` per flow) — same dequeue order, same fallible-enqueue
//! outcomes, and, via trace-collecting observers, identical event
//! streams, tags included.
//!
//! Unlike the fixed-point suite, the obligation here is unconditional:
//! the two backends run the *same* tag arithmetic, so identity must
//! hold for arbitrary weights, any tie-break rule, with virtual-time
//! rebasing on or off, and across flow churn (`force_remove_flow` and
//! re-registration, which exercises the pooled backend's generation
//! checks).
//!
//! Lazy flow GC *does* change one observable: a reclaimed flow must be
//! re-registered before its next packet (that is the point — the table
//! forgets idle flows). Its identity obligation is therefore
//! conditional: for callers that (re-)register a flow before every
//! enqueue, a GC'ing pooled scheduler is bit-identical to a
//! GC-less owned one, because the safe predicate (`last_finish ≤
//! v(t)`) guarantees a revived flow's first start tag recomputes to
//! exactly the value the retained `last_finish` would have produced
//! (`max(v, 0) = v = max(v, last_finish)`). The `*_gc_transparent_*`
//! tests check precisely that.
//!
//! Failures replay through the conformance `pool` preset
//! (`conformance replay: preset=pool seed=N`).

use proptest::prelude::*;
use sfq_repro::core::DEFAULT_SHIFT;
use sfq_repro::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded observer event, tags as exact rationals.
type Event = (u8, SimTime, u32, u64, u64, Ratio, Ratio, Ratio);

#[derive(Debug, Default)]
struct Trace {
    events: Vec<Event>,
}

impl Trace {
    fn record(&mut self, kind: u8, ev: &SchedEvent) {
        self.events.push((
            kind,
            ev.time,
            ev.flow.0,
            ev.uid,
            ev.len.as_u64(),
            ev.start_tag,
            ev.finish_tag,
            ev.v,
        ));
    }
}

impl SchedObserver for Trace {
    fn on_enqueue(&mut self, ev: &SchedEvent) {
        self.record(0, ev);
    }
    fn on_dequeue(&mut self, ev: &SchedEvent) {
        self.record(1, ev);
    }
    fn on_drop(&mut self, ev: &SchedEvent) {
        self.record(2, ev);
    }
    fn on_flow_change(&mut self, flow: FlowId, _change: &sfq_repro::core::obs::FlowChange) {
        // Record flow lifecycle as a pseudo-event so force-remove /
        // revive sequencing is part of the differential contract too.
        self.events.push((
            3,
            SimTime::ZERO,
            flow.0,
            0,
            0,
            Ratio::ZERO,
            Ratio::ZERO,
            Ratio::ZERO,
        ));
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Enqueue a packet of the given length for flow index `0..4`.
    Enq(usize, u64),
    /// Dequeue one packet (if any) and complete its transmission.
    Deq,
    /// Force-remove flow index `0..4` mid-backlog (the churn fault).
    ForceRemove(usize),
    /// Re-register flow index `0..4` (revives a removed flow; for a
    /// live flow this is the idempotent weight refresh).
    Revive(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        // The shim's prop_oneof! is unweighted; repeating the hot arms
        // biases toward enqueue/dequeue with occasional churn faults.
        prop_oneof![
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            (0usize..4, 64u64..1500).prop_map(|(f, l)| Op::Enq(f, l)),
            Just(Op::Deq),
            Just(Op::Deq),
            Just(Op::Deq),
            (0usize..4).prop_map(Op::ForceRemove),
            (0usize..4).prop_map(Op::Revive),
        ],
        1..200,
    )
}

fn weights() -> impl Strategy<Value = [u64; 4]> {
    (
        500u64..50_000,
        500u64..50_000,
        500u64..50_000,
        500u64..50_000,
    )
        .prop_map(|(a, b, c, d)| [a, b, c, d])
}

fn rebasing() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn ties() -> impl Strategy<Value = TieBreak> {
    prop_oneof![
        Just(TieBreak::Fifo),
        Just(TieBreak::LowWeightFirst),
        Just(TieBreak::HighWeightFirst),
    ]
}

/// Drive `sched` through `ops` (flow ids 1..=4 at rates `ws[i]`),
/// returning the dequeue order, per-op enqueue outcomes, and the full
/// observer trace.
fn run_ops<S: Scheduler>(
    mut sched: S,
    trace: Rc<RefCell<Trace>>,
    ws: &[u64; 4],
    ops: &[Op],
) -> (Vec<u64>, Vec<bool>, Vec<Event>) {
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    for (i, &w) in ws.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut order = Vec::new();
    let mut outcomes = Vec::new();
    for op in ops {
        match *op {
            Op::Enq(f, len) => {
                let pkt = pf.make(FlowId(f as u32 + 1), Bytes::new(len), now);
                outcomes.push(sched.try_enqueue(now, pkt).is_ok());
            }
            Op::Deq => {
                if let Some(p) = sched.dequeue(now) {
                    sched.on_departure(now);
                    order.push(p.uid);
                }
            }
            Op::ForceRemove(f) => {
                sched.force_remove_flow(FlowId(f as u32 + 1));
            }
            Op::Revive(f) => {
                sched.add_flow(FlowId(f as u32 + 1), Rate::bps(ws[f]));
            }
        }
    }
    while let Some(p) = sched.dequeue(now) {
        sched.on_departure(now);
        order.push(p.uid);
    }
    let events = std::mem::take(&mut trace.borrow_mut().events);
    (order, outcomes, events)
}

fn assert_identical(
    a: (Vec<u64>, Vec<bool>, Vec<Event>),
    b: (Vec<u64>, Vec<bool>, Vec<Event>),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.0, &b.0, "dequeue orders diverged");
    prop_assert_eq!(&a.1, &b.1, "enqueue outcomes diverged");
    prop_assert_eq!(a.2.len(), b.2.len(), "event counts diverged");
    for (i, (x, y)) in a.2.iter().zip(&b.2).enumerate() {
        prop_assert_eq!(x, y, "event #{} diverged", i);
    }
    Ok(())
}

/// GC-transparency comparison: packet events (enqueue/dequeue/drop,
/// tags included) must match; flow-*lifecycle* events are excluded
/// because reclamation visibility is precisely what GC changes (a
/// `force_remove_flow` of an already-collected flow reports nothing).
fn assert_identical_packets(
    a: (Vec<u64>, Vec<bool>, Vec<Event>),
    b: (Vec<u64>, Vec<bool>, Vec<Event>),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.0, &b.0, "dequeue orders diverged");
    prop_assert_eq!(&a.1, &b.1, "enqueue outcomes diverged");
    let pa: Vec<&Event> = a.2.iter().filter(|e| e.0 != 3).collect();
    let pb: Vec<&Event> = b.2.iter().filter(|e| e.0 != 3).collect();
    prop_assert_eq!(pa.len(), pb.len(), "packet event counts diverged");
    for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
        prop_assert_eq!(*x, *y, "packet event #{} diverged", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sfq pooled vs owned: identity across tie-break rules, rebasing,
    /// churn, and pooled-side GC.
    #[test]
    fn sfq_pooled_is_bit_identical_to_owned(
        tie in ties(), rebase in rebasing(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = Sfq::with_parts(tie, Rc::clone(&tp), FifoBackend::Pooled);
        let mut owned = Sfq::with_parts(tie, Rc::clone(&to), FifoBackend::Owned);
        if rebase {
            pooled.enable_rebasing(8);
            owned.enable_rebasing(8);
        }
        let rp = run_ops(pooled, tp, &ws, &ops);
        let ro = run_ops(owned, to, &ws, &ops);
        assert_identical(rp, ro)?;
    }

    /// SfqFast pooled vs owned, same obligation on the fixed-point
    /// path (where GC needs no floor because tags are never snapped).
    #[test]
    fn sfq_fast_pooled_is_bit_identical_to_owned(
        tie in ties(), rebase in rebasing(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled =
            SfqFast::with_parts(tie, DEFAULT_SHIFT, Rc::clone(&tp), FifoBackend::Pooled)
                .expect("default shift is valid");
        let mut owned =
            SfqFast::with_parts(tie, DEFAULT_SHIFT, Rc::clone(&to), FifoBackend::Owned)
                .expect("default shift is valid");
        if rebase {
            pooled.enable_rebasing(8);
            owned.enable_rebasing(8);
        }
        let rp = run_ops(pooled, tp, &ws, &ops);
        let ro = run_ops(owned, to, &ws, &ops);
        assert_identical(rp, ro)?;
    }

    /// Scfq pooled vs owned.
    #[test]
    fn scfq_pooled_is_bit_identical_to_owned(
        rebase in rebasing(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = Scfq::with_parts(Rc::clone(&tp), FifoBackend::Pooled);
        let mut owned = Scfq::with_parts(Rc::clone(&to), FifoBackend::Owned);
        if rebase {
            pooled.enable_rebasing(8);
            owned.enable_rebasing(8);
        }
        let rp = run_ops(pooled, tp, &ws, &ops);
        let ro = run_ops(owned, to, &ws, &ops);
        assert_identical(rp, ro)?;
    }

    /// ScfqFast pooled vs owned.
    #[test]
    fn scfq_fast_pooled_is_bit_identical_to_owned(
        rebase in rebasing(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = ScfqFast::with_parts(DEFAULT_SHIFT, Rc::clone(&tp), FifoBackend::Pooled)
            .expect("default shift is valid");
        let mut owned = ScfqFast::with_parts(DEFAULT_SHIFT, Rc::clone(&to), FifoBackend::Owned)
            .expect("default shift is valid");
        if rebase {
            pooled.enable_rebasing(8);
            owned.enable_rebasing(8);
        }
        let rp = run_ops(pooled, tp, &ws, &ops);
        let ro = run_ops(owned, to, &ws, &ops);
        assert_identical(rp, ro)?;
    }

    /// The sharded engine facade with pooled shards vs owned shards:
    /// the backend choice must be invisible through ingest → pump →
    /// drain too (churn ops are no-ops here — the facade's
    /// `force_remove_flow` is the trait default — so this closes over
    /// the enqueue/dequeue surface).
    #[test]
    fn engine_facade_pooled_is_bit_identical_to_owned(
        ws in weights(), ops in ops()
    ) {
        use sfq_engine::{EngineConfig, SyncEngine};
        let mk = |backend: FifoBackend, trace: Rc<RefCell<Trace>>| {
            SyncEngine::from_factory(
                EngineConfig::new(3).batch(4).ring_capacity(64),
                move |_| Sfq::with_parts(TieBreak::Fifo, Rc::clone(&trace), backend),
            )
        };
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let pooled = mk(FifoBackend::Pooled, Rc::clone(&tp));
        let owned = mk(FifoBackend::Owned, Rc::clone(&to));
        let rp = run_ops(pooled, tp, &ws, &ops);
        let ro = run_ops(owned, to, &ws, &ops);
        assert_identical(rp, ro)?;
    }

    /// Sfq with lazy GC on the pooled side vs a GC-less owned oracle,
    /// under register-before-enqueue discipline: GC reclamation must be
    /// invisible (revival stability of the safe predicate).
    #[test]
    fn sfq_gc_is_transparent_under_reregistration(
        tie in ties(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = Sfq::with_parts(tie, Rc::clone(&tp), FifoBackend::Pooled);
        let owned = Sfq::with_parts(tie, Rc::clone(&to), FifoBackend::Owned);
        pooled.enable_flow_gc();
        let rp = run_ops_reregistering(pooled, tp, &ws, &ops);
        let ro = run_ops_reregistering(owned, to, &ws, &ops);
        assert_identical_packets(rp, ro)?;
    }

    /// SfqFast, same GC-transparency obligation on the fixed-point
    /// path (no pico-grid snap, so the predicate needs no floor).
    #[test]
    fn sfq_fast_gc_is_transparent_under_reregistration(
        tie in ties(), ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled =
            SfqFast::with_parts(tie, DEFAULT_SHIFT, Rc::clone(&tp), FifoBackend::Pooled)
                .expect("default shift is valid");
        let owned = SfqFast::with_parts(tie, DEFAULT_SHIFT, Rc::clone(&to), FifoBackend::Owned)
            .expect("default shift is valid");
        pooled.enable_flow_gc();
        let rp = run_ops_reregistering(pooled, tp, &ws, &ops);
        let ro = run_ops_reregistering(owned, to, &ws, &ops);
        assert_identical_packets(rp, ro)?;
    }

    /// Scfq, same GC-transparency obligation (exact path: the floored
    /// horizon keeps the predicate robust to the pico-grid snap).
    #[test]
    fn scfq_gc_is_transparent_under_reregistration(
        ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = Scfq::with_parts(Rc::clone(&tp), FifoBackend::Pooled);
        let owned = Scfq::with_parts(Rc::clone(&to), FifoBackend::Owned);
        pooled.enable_flow_gc();
        let rp = run_ops_reregistering(pooled, tp, &ws, &ops);
        let ro = run_ops_reregistering(owned, to, &ws, &ops);
        assert_identical_packets(rp, ro)?;
    }

    /// ScfqFast, same GC-transparency obligation.
    #[test]
    fn scfq_fast_gc_is_transparent_under_reregistration(
        ws in weights(), ops in ops()
    ) {
        let tp = Rc::new(RefCell::new(Trace::default()));
        let to = Rc::new(RefCell::new(Trace::default()));
        let mut pooled = ScfqFast::with_parts(DEFAULT_SHIFT, Rc::clone(&tp), FifoBackend::Pooled)
            .expect("default shift is valid");
        let owned = ScfqFast::with_parts(DEFAULT_SHIFT, Rc::clone(&to), FifoBackend::Owned)
            .expect("default shift is valid");
        pooled.enable_flow_gc();
        let rp = run_ops_reregistering(pooled, tp, &ws, &ops);
        let ro = run_ops_reregistering(owned, to, &ws, &ops);
        assert_identical_packets(rp, ro)?;
    }
}

/// Like [`run_ops`], but re-registers a flow immediately before every
/// enqueue — the discipline under which lazy GC must be transparent.
fn run_ops_reregistering<S: Scheduler>(
    mut sched: S,
    trace: Rc<RefCell<Trace>>,
    ws: &[u64; 4],
    ops: &[Op],
) -> (Vec<u64>, Vec<bool>, Vec<Event>) {
    let mut pf = PacketFactory::new();
    let now = SimTime::ZERO;
    for (i, &w) in ws.iter().enumerate() {
        sched.add_flow(FlowId(i as u32 + 1), Rate::bps(w));
    }
    let mut order = Vec::new();
    let mut outcomes = Vec::new();
    for op in ops {
        match *op {
            Op::Enq(f, len) => {
                sched.add_flow(FlowId(f as u32 + 1), Rate::bps(ws[f]));
                let pkt = pf.make(FlowId(f as u32 + 1), Bytes::new(len), now);
                outcomes.push(sched.try_enqueue(now, pkt).is_ok());
            }
            Op::Deq => {
                if let Some(p) = sched.dequeue(now) {
                    sched.on_departure(now);
                    order.push(p.uid);
                }
            }
            Op::ForceRemove(f) => {
                sched.force_remove_flow(FlowId(f as u32 + 1));
            }
            Op::Revive(f) => {
                sched.add_flow(FlowId(f as u32 + 1), Rate::bps(ws[f]));
            }
        }
    }
    while let Some(p) = sched.dequeue(now) {
        sched.on_departure(now);
        order.push(p.uid);
    }
    let events = std::mem::take(&mut trace.borrow_mut().events);
    (order, outcomes, events)
}

/// The same obligation as the proptests, reproduced from a conformance
/// replay line — the failure-message round trip every pooled-backend
/// report promises.
#[test]
fn pool_preset_replay_line_reproduces_the_differential_check() {
    use conformance::{run_pool_conformance, Preset, Scenario};
    let sc = Scenario::from_seed(Preset::Pool, 5);
    assert_eq!(sc.replay_line(), "conformance replay: preset=pool seed=5");
    let back = Scenario::from_replay_line(&sc.replay_line()).expect("round trip");
    assert_eq!(back.preset, Preset::Pool);
    assert_eq!(back.seed, 5);
    let out = run_pool_conformance(&back).unwrap_or_else(|d| panic!("{d}"));
    assert!(out.compared > 0);
}
