//! Theorem 1 conformance measured through the observability layer.
//!
//! Where `tests/theorem1_fairness.rs` computes the fairness gap from
//! departure records after the fact, this suite attaches an
//! `sfq_obs::FlowMetrics` observer to the scheduler itself and checks
//! the *live* measurement: the worst normalized-service spread the
//! observer saw over any interval in which both flows stayed
//! backlogged must never exceed the Theorem 1 bound
//! `l_f^max/r_f + l_m^max/r_m`.
//!
//! The same harness runs over the baselines with the expectations the
//! paper supports:
//!
//! - **SFQ**: Theorem 1 — the bound holds on any server, constant or
//!   fluctuating.
//! - **SCFQ**: Golestani's analysis gives the *same* fairness measure
//!   (the paper's Table 1), so the same bound is asserted; SCFQ's
//!   weakness relative to SFQ is delay (Eq. 56–57), not fairness.
//! - **Virtual Clock**: *no* general fairness bound exists. With every
//!   packet arriving at t = 0 the auxiliary clocks never fall behind
//!   real time and VC degenerates to serve-by-cumulative-span, which
//!   happens to respect the same bound — asserted here only for that
//!   restricted workload. The deterministic test at the bottom shows
//!   the spread exceeding the bound by an arbitrary factor as soon as
//!   a flow has used idle bandwidth (the paper's Section 1 critique),
//!   which is why no proptest over general arrival patterns is
//!   possible.

use proptest::prelude::*;
use sfq_repro::prelude::*;

/// Both flows fully backlogged from t = 0: every packet arrives at
/// time zero, far more offered load than the link drains over the run.
fn backlogged_workload(pf: &mut PacketFactory, lens1: &[u64], lens2: &[u64]) -> Vec<Packet> {
    let mut arrivals = Vec::new();
    for &l in lens1 {
        arrivals.push(pf.make(FlowId(1), Bytes::new(l), SimTime::ZERO));
    }
    for &l in lens2 {
        arrivals.push(pf.make(FlowId(2), Bytes::new(l), SimTime::ZERO));
    }
    arrivals.sort_by_key(|p| p.uid);
    arrivals
}

/// Run `sched` (already carrying a `FlowMetrics` observer reachable via
/// `metrics`) over the workload and compare the observer's worst
/// backlogged-pair spread against the Theorem 1 bound.
fn check_observed_bound<S: Scheduler>(
    mut sched: S,
    metrics: impl FnOnce(S) -> FlowMetrics,
    lens1: Vec<u64>,
    lens2: Vec<u64>,
    r1: u64,
    r2: u64,
    profile: &RateProfile,
) -> Result<(), TestCaseError> {
    let (w1, w2) = (Rate::bps(r1), Rate::bps(r2));
    sched.add_flow(FlowId(1), w1);
    sched.add_flow(FlowId(2), w2);
    let mut pf = PacketFactory::new();
    let arrivals = backlogged_workload(&mut pf, &lens1, &lens2);
    let _ = run_server(&mut sched, profile, &arrivals, SimTime::from_secs(100_000));
    let m = metrics(sched);
    let spread = m
        .worst_spread_between(FlowId(1), FlowId(2))
        .unwrap_or(Ratio::ZERO);
    let l1 = *lens1.iter().max().expect("non-empty");
    let l2 = *lens2.iter().max().expect("non-empty");
    let bound = sfq_fairness_bound(Bytes::new(l1), w1, Bytes::new(l2), w2);
    prop_assert!(
        spread <= bound,
        "observed spread {spread:?} exceeds Theorem 1 bound {bound:?} (r1={r1} r2={r2})"
    );
    Ok(())
}

fn lens() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(64u64..2000, 30..60)
}

fn weight() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1_000u64), 500u64..50_000]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Theorem 1 over SFQ, measured live by the observer, constant
    /// server.
    #[test]
    fn sfq_observed_gap_within_theorem1(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()
    ) {
        let link = RateProfile::constant(Rate::bps(16_000));
        check_observed_bound(
            Sfq::with_observer(TieBreak::default(), FlowMetrics::new()),
            |s| s.into_observer(),
            l1, l2, r1, r2, &link,
        )?;
    }

    /// Theorem 1 is server-independent: same check on a fluctuating
    /// (FC on/off) server.
    #[test]
    fn sfq_observed_gap_within_theorem1_fc_server(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight(),
        delta in 1_000u64..100_000,
    ) {
        let profile = fc_on_off(
            FcParams { rate: Rate::bps(16_000), delta_bits: delta },
            SimTime::from_secs(20_000),
        );
        check_observed_bound(
            Sfq::with_observer(TieBreak::default(), FlowMetrics::new()),
            |s| s.into_observer(),
            l1, l2, r1, r2, &profile,
        )?;
    }

    /// SCFQ: same fairness measure as SFQ (paper Table 1), so the same
    /// bound is expected to hold under the observer.
    #[test]
    fn scfq_observed_gap_within_bound(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()
    ) {
        let link = RateProfile::constant(Rate::bps(16_000));
        check_observed_bound(
            Scfq::with_observer(FlowMetrics::new()),
            |s| s.into_observer(),
            l1, l2, r1, r2, &link,
        )?;
    }

    /// Virtual Clock, restricted workload only (see module docs): with
    /// all arrivals at t = 0 no flow ever uses idle bandwidth, the
    /// stamps reduce to cumulative normalized spans, and the spread
    /// stays within the SFQ bound. This is a property of the workload,
    /// NOT of the discipline — the deterministic test below shows the
    /// general case diverging.
    #[test]
    fn vc_observed_gap_bounded_without_idle_history(
        l1 in lens(), l2 in lens(), r1 in weight(), r2 in weight()
    ) {
        let link = RateProfile::constant(Rate::bps(16_000));
        check_observed_bound(
            VirtualClock::with_observer(FlowMetrics::new()),
            |s| s.into_observer(),
            l1, l2, r1, r2, &link,
        )?;
    }
}

/// The paper's Section 1 critique of Virtual Clock, measured by the
/// observer: a flow that used idle bandwidth builds auxVC far ahead of
/// real time; a newly active competitor then monopolizes the server
/// while the first flow is continuously backlogged, and the
/// normalized-service spread blows through the Theorem 1 bound.
#[test]
fn vc_observed_gap_unbounded_after_idle_bandwidth_use() {
    let mut vc = VirtualClock::with_observer(FlowMetrics::new());
    let (w, len) = (Rate::bps(1_000), Bytes::new(125)); // span = 1 s
    vc.add_flow(FlowId(1), w);
    vc.add_flow(FlowId(2), w);
    let mut pf = PacketFactory::new();

    // Flow 1 alone: burst 10 packets at t = 0 and drain them by t = 1,
    // ten times its reserved rate — the link was idle, so this is
    // legitimate — but auxVC(1) runs to 10 while real time is 1.
    for _ in 0..10 {
        vc.enqueue(SimTime::ZERO, pf.make(FlowId(1), len, SimTime::ZERO));
    }
    for k in 1..=10 {
        let p = vc
            .dequeue(SimTime::from_millis(100 * k))
            .expect("backlogged");
        assert_eq!(p.flow, FlowId(1));
    }

    // At t = 1 both flows send 10 packets. Flow 1's stamps continue
    // from auxVC at 11..20; flow 2 starts fresh from real time with
    // stamps 2..11 and is served 9 times in a row while flow 1 stays
    // continuously backlogged.
    let t1 = SimTime::from_secs(1);
    for _ in 0..10 {
        vc.enqueue(t1, pf.make(FlowId(1), len, t1));
        vc.enqueue(t1, pf.make(FlowId(2), len, t1));
    }
    for k in 1..=9 {
        let p = vc.dequeue(SimTime::from_secs(1 + k)).expect("backlogged");
        assert_eq!(p.flow, FlowId(2), "punished flow served too early");
    }
    while vc.dequeue(SimTime::from_secs(30)).is_some() {}

    let m = vc.into_observer();
    let spread = m
        .worst_spread_between(FlowId(1), FlowId(2))
        .expect("pair tracked");
    let bound = sfq_fairness_bound(len, w, len, w); // 1 + 1 = 2 s
    assert_eq!(bound, Ratio::from_int(2));
    // The watermark opens at d = 10 s (flow 1's whole burst counted,
    // flow 2 at zero) and flow 2 then claws back 9 s of normalized
    // service before flow 1 is served once: spread 9 s, 4.5× the
    // fair-scheduler bound, growing linearly with the original burst.
    assert_eq!(spread, Ratio::from_int(9));
    assert!(spread > bound);
}

/// SFQ on the identical punished-flow scenario: the burst that ruins
/// Virtual Clock leaves SFQ's fairness untouched (v(t) restarts from
/// the in-service start tag, carrying no idle-time debt).
#[test]
fn sfq_same_scenario_stays_within_bound() {
    let mut s = Sfq::with_observer(TieBreak::default(), FlowMetrics::new());
    let (w, len) = (Rate::bps(1_000), Bytes::new(125));
    s.add_flow(FlowId(1), w);
    s.add_flow(FlowId(2), w);
    let mut pf = PacketFactory::new();
    for _ in 0..10 {
        s.enqueue(SimTime::ZERO, pf.make(FlowId(1), len, SimTime::ZERO));
    }
    for k in 1..=10 {
        let p = s
            .dequeue(SimTime::from_millis(100 * k))
            .expect("backlogged");
        assert_eq!(p.flow, FlowId(1));
    }
    let t1 = SimTime::from_secs(1);
    for _ in 0..10 {
        s.enqueue(t1, pf.make(FlowId(1), len, t1));
        s.enqueue(t1, pf.make(FlowId(2), len, t1));
    }
    while s.dequeue(SimTime::from_secs(30)).is_some() {}
    let m = s.into_observer();
    let spread = m
        .worst_spread_between(FlowId(1), FlowId(2))
        .expect("pair tracked");
    assert!(
        spread <= sfq_fairness_bound(len, w, len, w),
        "SFQ spread {spread:?} broke Theorem 1 on the VC-pathology workload"
    );
}
