//! End-to-end Theorem 6 / Corollary 1 conformance over tandems of 2–5
//! FC servers, with injected capacity droop, cross-flow churn, and
//! per-flow buffer caps — the tentpole check of the conformance
//! harness. Any failure prints a `conformance replay: preset=.. seed=..`
//! line that reproduces the exact run.

use conformance::{run_tandem_conformance, Preset, Scenario};
use proptest::prelude::*;
use simtime::SimDuration;

fn assert_conforms(sc: &Scenario) -> Result<(), TestCaseError> {
    let out = run_tandem_conformance(sc, false);
    prop_assert!(
        out.completed > 0,
        "no observed packets completed ({} injected)\n  {}",
        out.injected,
        out.replay
    );
    prop_assert_eq!(
        out.theorem6_violation,
        SimDuration::ZERO,
        "Theorem 6 violated by {:?} over {} hops (term {:?}, \
         churn_discarded={} churn_refused={} buffer_dropped={})\n  {}",
        out.theorem6_violation,
        out.hops,
        out.term,
        out.churn_discarded,
        out.churn_refused,
        out.buffer_dropped,
        out.replay
    );
    prop_assert_eq!(
        out.corollary1_violation,
        SimDuration::ZERO,
        "Corollary 1 violated by {:?} (bound {:?}, max delay {:?})\n  {}",
        out.corollary1_violation,
        out.corollary1_bound,
        out.max_delay,
        out.replay
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 6 + Corollary 1 hold over randomly generated faulted
    /// tandems of 2–5 FC servers.
    #[test]
    fn theorem6_corollary1_over_faulted_tandems(seed in 0u64..1_000_000) {
        let sc = Scenario::from_seed(Preset::Tandem, seed);
        assert_conforms(&sc)?;
    }
}

/// A failure replay line reproduces the generating scenario and the
/// bit-identical outcome — the single-line-replay contract.
#[test]
fn replay_line_reproduces_run_exactly() {
    let sc = Scenario::from_seed(Preset::Tandem, 77);
    let line = sc.replay_line();
    let back = Scenario::from_replay_line(&line).expect("replay line parses");
    let a = run_tandem_conformance(&sc, false);
    let b = run_tandem_conformance(&back, false);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.theorem6_violation, b.theorem6_violation);
    assert_eq!(a.churn_discarded, b.churn_discarded);
    assert_eq!(a.buffer_dropped, b.buffer_dropped);
}

/// The generated fault schedule is actually exercised: across a seed
/// range, some scenarios discard churned backlog and some drop at
/// buffer caps (otherwise the proptest above would be testing the
/// fault-free path only).
#[test]
fn fault_paths_are_reachable() {
    let mut churned = false;
    let mut capped = false;
    for seed in 0..24u64 {
        let sc = Scenario::from_seed(Preset::Tandem, seed);
        if churned && capped {
            break;
        }
        if (!churned && !sc.churns.is_empty()) || (!capped && sc.per_flow_cap.is_some()) {
            let out = run_tandem_conformance(&sc, false);
            churned |= out.churn_discarded + out.churn_refused > 0;
            capped |= out.buffer_dropped > 0;
        }
    }
    assert!(churned, "no seed in 0..24 exercised churn discard/refusal");
    assert!(capped, "no seed in 0..24 exercised buffer-cap drops");
}

/// Long-horizon nightly mode: many more seeds, stretched horizons.
/// Ignored in tier-1; CI's nightly job runs it with
/// `cargo test -- --ignored nightly_long_horizon`.
#[test]
#[ignore = "nightly long-horizon sweep; run with --ignored"]
fn nightly_long_horizon_tandems() {
    let cases: u64 = std::env::var("CONFORMANCE_NIGHTLY_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let scale: u64 = std::env::var("CONFORMANCE_HORIZON_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut failures = Vec::new();
    for seed in 1_000_000..1_000_000 + cases {
        let mut sc = Scenario::from_seed(Preset::Tandem, seed);
        sc.horizon_ms *= scale;
        let out = run_tandem_conformance(&sc, false);
        if out.theorem6_violation > SimDuration::ZERO
            || out.corollary1_violation > SimDuration::ZERO
            || out.completed == 0
        {
            eprintln!(
                "FAIL: thm6={:?} cor1={:?} completed={}\n  {} (horizon x{scale})",
                out.theorem6_violation, out.corollary1_violation, out.completed, out.replay
            );
            failures.push(out.replay);
        }
    }
    assert!(
        failures.is_empty(),
        "{} long-horizon failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
